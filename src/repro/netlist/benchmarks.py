"""Benchmark circuits: exact C17 plus ISCAS85-profile stand-ins.

C17 is shipped verbatim (it is six NAND gates, published in full in the
paper's running example, Figs. 4-5).  C6288 is generated structurally as
a 16x16 array multiplier, which is what the original circuit is.  The
remaining ISCAS85 circuits are produced by the seeded synthetic generator
matched to their published statistics — see DESIGN.md §6 for why this
substitution preserves the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import NetlistError
from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.generate import GeneratorConfig, generate_iscas_like
from repro.netlist.multiplier import array_multiplier

__all__ = [
    "CircuitProfile",
    "ISCAS85_PROFILES",
    "TABLE1_CIRCUITS",
    "c17",
    "c17_paper_naming",
    "C17_PAPER_OPTIMUM",
    "load_iscas85",
    "table1_circuits",
]


@dataclass(frozen=True)
class CircuitProfile:
    """Published statistics of an ISCAS85 circuit (gate counts from the
    Brglez/Fujiwara distribution; depths in unit gate levels)."""

    name: str
    num_gates: int
    num_inputs: int
    num_outputs: int
    depth: int


#: Published ISCAS85 statistics used to parameterise the stand-ins.
ISCAS85_PROFILES: dict[str, CircuitProfile] = {
    "c432": CircuitProfile("c432", 160, 36, 7, 17),
    "c499": CircuitProfile("c499", 202, 41, 32, 11),
    "c880": CircuitProfile("c880", 383, 60, 26, 24),
    "c1355": CircuitProfile("c1355", 546, 41, 32, 24),
    "c1908": CircuitProfile("c1908", 880, 33, 25, 40),
    "c2670": CircuitProfile("c2670", 1193, 233, 140, 32),
    "c3540": CircuitProfile("c3540", 1669, 50, 22, 47),
    "c5315": CircuitProfile("c5315", 2307, 178, 123, 49),
    "c6288": CircuitProfile("c6288", 2406, 32, 32, 124),
    "c7552": CircuitProfile("c7552", 3512, 207, 108, 43),
}

#: The six circuits of the paper's Table 1, in table order.  The paper's
#: table header reads "C7522"; the ISCAS85 circuit is C7552 (typo in the
#: original).
TABLE1_CIRCUITS: tuple[str, ...] = ("c1908", "c2670", "c3540", "c5315", "c6288", "c7552")

_C17_BENCH = """
# c17 - ISCAS85, exact netlist (5 inputs, 2 outputs, 6 NAND gates)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""

_C17_PAPER_BENCH = """
# c17 with the paper's Fig. 4-5 naming: gates g1..g6, inputs I1..I5.
INPUT(I1)
INPUT(I2)
INPUT(I3)
INPUT(I4)
INPUT(I5)
OUTPUT(O2)
OUTPUT(O3)
g1 = NAND(I1, I3)
g2 = NAND(I3, I4)
g3 = NAND(I2, g2)
g4 = NAND(g2, I5)
O2 = NAND(g1, g3)
O3 = NAND(g3, g4)
"""

#: The optimum 2-module partition the paper derives for C17 (Fig. 5):
#: {(1,3,5), (2,4,6)} in the paper's gate numbering.  In our paper-naming
#: netlist, gates 5 and 6 are the output NANDs O2 and O3.
C17_PAPER_OPTIMUM: tuple[frozenset[str], frozenset[str]] = (
    frozenset({"g1", "g3", "O2"}),
    frozenset({"g2", "g4", "O3"}),
)


@lru_cache(maxsize=None)
def c17() -> Circuit:
    """The exact ISCAS85 C17 benchmark (standard net numbering)."""
    return parse_bench(_C17_BENCH, name="c17")


@lru_cache(maxsize=None)
def c17_paper_naming() -> Circuit:
    """C17 with the paper's running-example naming (g1..g6, I1..I5)."""
    return parse_bench(_C17_PAPER_BENCH, name="c17-paper")


@lru_cache(maxsize=None)
def load_iscas85(name: str) -> Circuit:
    """Load an ISCAS85 circuit or its documented stand-in.

    ``c17`` is exact; ``c6288`` is a structurally faithful 16x16 array
    multiplier; every other name yields the seeded synthetic circuit for
    that profile.  Unknown names raise :class:`NetlistError`.
    """
    key = name.lower()
    if key == "c17":
        return c17()
    if key == "c6288":
        return array_multiplier(16, name="c6288").circuit
    profile = ISCAS85_PROFILES.get(key)
    if profile is None:
        known = ", ".join(sorted(set(ISCAS85_PROFILES) | {"c17"}))
        raise NetlistError(f"unknown ISCAS85 circuit {name!r}; known: {known}")
    config = GeneratorConfig(
        name=profile.name,
        num_gates=profile.num_gates,
        num_inputs=profile.num_inputs,
        num_outputs=profile.num_outputs,
        depth=profile.depth,
        seed=1995 + profile.num_gates,
    )
    return generate_iscas_like(config)


def table1_circuits() -> dict[str, Circuit]:
    """All six Table 1 circuits, keyed by name, in table order."""
    return {name: load_iscas85(name) for name in TABLE1_CIRCUITS}
