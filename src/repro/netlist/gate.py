"""Gate primitives: types, logic evaluation and the :class:`Gate` record.

The gate model is deliberately simple — single-output combinational cells
with an arbitrary number of inputs — because that is all the 1995 paper's
partitioning problem needs.  Logic evaluation is provided both for single
scalar values (used by unit tests and small examples) and, in
:mod:`repro.faultsim.logic_sim`, in a bit-parallel form for the IDDQ fault
simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["GateType", "Gate", "evaluate_gate", "GATE_ARITY"]


class GateType(enum.Enum):
    """Supported combinational cell types.

    ``INPUT`` is a pseudo-gate marking a primary input; it has no fanins
    and its value is driven by the test pattern.  ``BUF`` and ``NOT`` are
    single-input; all others accept two or more inputs (the ISCAS85
    benchmarks use fanins up to 9).
    """

    INPUT = "INPUT"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"

    @property
    def is_input(self) -> bool:
        return self is GateType.INPUT

    @property
    def is_inverting(self) -> bool:
        """True for cells whose output is the complement of the base function."""
        return self in _INVERTING

    @property
    def min_arity(self) -> int:
        return GATE_ARITY[self][0]

    @property
    def max_arity(self) -> int | None:
        """Maximum fanin count, or ``None`` when unbounded."""
        return GATE_ARITY[self][1]


_INVERTING = {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}

#: Per-type (min_fanin, max_fanin) bounds.  ``None`` means unbounded.
GATE_ARITY: dict[GateType, tuple[int, int | None]] = {
    GateType.INPUT: (0, 0),
    GateType.BUF: (1, 1),
    GateType.NOT: (1, 1),
    GateType.AND: (2, None),
    GateType.NAND: (2, None),
    GateType.OR: (2, None),
    GateType.NOR: (2, None),
    GateType.XOR: (2, None),
    GateType.XNOR: (2, None),
}


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a single gate on scalar 0/1 inputs.

    Raises :class:`ValueError` for arity violations, so that simulator bugs
    surface loudly instead of producing silently wrong coverage numbers.
    """
    lo, hi = GATE_ARITY[gate_type]
    if len(inputs) < lo or (hi is not None and len(inputs) > hi):
        raise ValueError(
            f"{gate_type.value} expects between {lo} and {hi if hi is not None else 'inf'}"
            f" inputs, got {len(inputs)}"
        )
    if gate_type is GateType.INPUT:
        raise ValueError("INPUT pseudo-gates are driven by the pattern, not evaluated")
    if gate_type is GateType.BUF:
        return inputs[0] & 1
    if gate_type is GateType.NOT:
        return 1 - (inputs[0] & 1)
    if gate_type is GateType.AND:
        return int(all(inputs))
    if gate_type is GateType.NAND:
        return 1 - int(all(inputs))
    if gate_type is GateType.OR:
        return int(any(inputs))
    if gate_type is GateType.NOR:
        return 1 - int(any(inputs))
    parity = 0
    for bit in inputs:
        parity ^= bit & 1
    if gate_type is GateType.XOR:
        return parity
    return 1 - parity  # XNOR


@dataclass
class Gate:
    """A single gate instance in a circuit.

    Attributes:
        name: unique net/gate identifier (ISCAS ``.bench`` convention —
            the gate and the net it drives share a name).
        gate_type: the cell function.
        fanins: names of driving gates, in input order.
        cell: optional cell-library binding (e.g. ``"NAND2"``); when left
            empty, :mod:`repro.library` binds by type and fanin count.
    """

    name: str
    gate_type: GateType
    fanins: tuple[str, ...] = field(default_factory=tuple)
    cell: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("gate name must be non-empty")
        lo, hi = GATE_ARITY[self.gate_type]
        if len(self.fanins) < lo or (hi is not None and len(self.fanins) > hi):
            raise ValueError(
                f"gate {self.name!r}: {self.gate_type.value} expects between {lo} and "
                f"{hi if hi is not None else 'inf'} fanins, got {len(self.fanins)}"
            )
        if len(set(self.fanins)) != len(self.fanins):
            raise ValueError(f"gate {self.name!r} has duplicated fanins: {self.fanins}")

    @property
    def arity(self) -> int:
        return len(self.fanins)

    def default_cell_name(self) -> str:
        """The library cell name implied by type and arity (e.g. ``NAND3``)."""
        if self.gate_type is GateType.INPUT:
            return "INPUT"
        if self.gate_type in (GateType.BUF, GateType.NOT):
            return self.gate_type.value
        return f"{self.gate_type.value}{self.arity}"
