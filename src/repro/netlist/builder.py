"""Fluent incremental construction of :class:`~repro.netlist.circuit.Circuit`.

The builder keeps insertion order (so generated netlists are stable and
diffable), validates names eagerly and defers the global structural checks
to :meth:`CircuitBuilder.build`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate, GateType

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Accumulates gates and produces an immutable :class:`Circuit`.

    Example::

        b = CircuitBuilder("c17")
        for pi in ("1", "2", "3", "6", "7"):
            b.input(pi)
        b.gate("10", GateType.NAND, ["1", "3"])
        ...
        circuit = b.outputs(["22", "23"]).build()
    """

    def __init__(self, name: str):
        if not name:
            raise NetlistError("circuit name must be non-empty")
        self.name = name
        self._gates: dict[str, Gate] = {}
        self._outputs: list[str] = []

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def input(self, name: str) -> "CircuitBuilder":
        """Declare a primary input."""
        return self.add(Gate(name, GateType.INPUT))

    def gate(
        self,
        name: str,
        gate_type: GateType | str,
        fanins: Sequence[str],
        cell: str = "",
    ) -> "CircuitBuilder":
        """Add a logic gate driven by ``fanins`` (which must exist already
        or be added before :meth:`build`)."""
        if isinstance(gate_type, str):
            gate_type = GateType(gate_type.upper())
        return self.add(Gate(name, gate_type, tuple(fanins), cell=cell))

    def add(self, gate: Gate) -> "CircuitBuilder":
        if gate.name in self._gates:
            raise NetlistError(f"gate {gate.name!r} already defined in builder {self.name!r}")
        self._gates[gate.name] = gate
        return self

    def output(self, name: str) -> "CircuitBuilder":
        """Mark an existing (or future) gate as a primary output."""
        self._outputs.append(name)
        return self

    def outputs(self, names: Iterable[str]) -> "CircuitBuilder":
        for name in names:
            self.output(name)
        return self

    def fresh_name(self, prefix: str) -> str:
        """Return a name of the form ``prefix``/``prefixN`` not yet used."""
        if prefix not in self._gates:
            return prefix
        index = 1
        while f"{prefix}_{index}" in self._gates:
            index += 1
        return f"{prefix}_{index}"

    def build(self) -> Circuit:
        """Validate and freeze into a :class:`Circuit`."""
        return Circuit(self.name, self._gates.values(), self._outputs)
