"""ISCAS ``.bench`` format reader and writer.

The ``.bench`` dialect understood here is the one used for the ISCAS85
combinational benchmarks::

    # comment
    INPUT(1)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

Parsing is strict: unknown gate functions, redefined nets, missing
drivers and arity violations all raise
:class:`~repro.errors.BenchFormatError` (wrapping the underlying netlist
error where appropriate) with a line number, because silently mis-read
benchmarks would invalidate every experiment downstream.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import BenchFormatError, NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import Gate, GateType

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "write_bench_file"]

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_ASSIGN_RE = re.compile(
    r"^([^\s=]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^()]*)\s*\)$"
)

#: ``.bench`` function keywords mapped to gate types (case-insensitive).
_FUNCTIONS = {
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` text into a :class:`Circuit`.

    Args:
        text: full file contents.
        name: circuit name (``.bench`` has no in-band name field).
    """
    gates: list[Gate] = []
    seen: set[str] = set()
    outputs: list[str] = []

    def add(gate: Gate, lineno: int) -> None:
        if gate.name in seen:
            raise BenchFormatError(f"line {lineno}: net {gate.name!r} defined twice")
        seen.add(gate.name)
        gates.append(gate)

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if match := _INPUT_RE.match(line):
            add(Gate(match.group(1), GateType.INPUT), lineno)
            continue
        if match := _OUTPUT_RE.match(line):
            outputs.append(match.group(1))
            continue
        match = _ASSIGN_RE.match(line)
        if not match:
            raise BenchFormatError(f"line {lineno}: cannot parse {raw.strip()!r}")
        target, func, fanin_text = match.groups()
        gate_type = _FUNCTIONS.get(func.upper())
        if gate_type is None:
            raise BenchFormatError(f"line {lineno}: unknown gate function {func!r}")
        fanins = tuple(f.strip() for f in fanin_text.split(",") if f.strip())
        try:
            add(Gate(target, gate_type, fanins), lineno)
        except (ValueError, NetlistError) as exc:
            raise BenchFormatError(f"line {lineno}: {exc}") from exc

    try:
        return Circuit(name, gates, outputs)
    except NetlistError as exc:
        raise BenchFormatError(str(exc)) from exc


def parse_bench_file(path: str | Path, name: str | None = None) -> Circuit:
    """Parse a ``.bench`` file; the circuit name defaults to the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=name or path.stem)


def write_bench(circuit: Circuit, header: str = "") -> str:
    """Serialise a circuit to ``.bench`` text.

    The output round-trips through :func:`parse_bench` to a structurally
    identical circuit (same gates, fanin order, outputs).
    """
    lines: list[str] = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.append(f"# circuit: {circuit.name}")
    lines.append(
        f"# {len(circuit.input_names)} inputs, {len(circuit.output_names)} outputs, "
        f"{len(circuit.gate_names)} gates"
    )
    lines.extend(f"INPUT({name})" for name in circuit.input_names)
    lines.append("")
    lines.extend(f"OUTPUT({name})" for name in circuit.output_names)
    lines.append("")
    # Emit in insertion order so writing and re-parsing is an exact
    # round-trip (``.bench`` does not require definition before use).
    for gate in circuit:
        if gate.gate_type.is_input:
            continue
        fanins = ", ".join(gate.fanins)
        lines.append(f"{gate.name} = {gate.gate_type.value}({fanins})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: str | Path, header: str = "") -> None:
    Path(path).write_text(write_bench(circuit, header=header))
