"""Structural lint checks for circuits.

:class:`~repro.netlist.circuit.Circuit` enforces hard invariants at
construction (defined fanins, acyclicity, named outputs).  The checks
here report *soft* issues — dangling gates, unused inputs — that are
legal but usually indicate a bad netlist or generator bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit

__all__ = ["StructuralIssues", "check_circuit"]


@dataclass
class StructuralIssues:
    """Collected soft issues; empty lists mean a clean circuit."""

    dangling_gates: list[str] = field(default_factory=list)
    unused_inputs: list[str] = field(default_factory=list)
    constant_candidates: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.dangling_gates or self.unused_inputs or self.constant_candidates)

    def summary(self) -> str:
        if self.clean:
            return "clean"
        parts = []
        if self.dangling_gates:
            parts.append(f"{len(self.dangling_gates)} dangling gate(s)")
        if self.unused_inputs:
            parts.append(f"{len(self.unused_inputs)} unused input(s)")
        if self.constant_candidates:
            parts.append(f"{len(self.constant_candidates)} suspicious constant gate(s)")
        return "; ".join(parts)


def check_circuit(circuit: Circuit) -> StructuralIssues:
    """Run all soft checks and return the collected issues."""
    issues = StructuralIssues()
    outputs = set(circuit.output_names)
    for name in circuit.gate_names:
        if not circuit.fanouts[name] and name not in outputs:
            issues.dangling_gates.append(name)
    for name in circuit.input_names:
        if not circuit.fanouts[name] and name not in outputs:
            issues.unused_inputs.append(name)
    for name in circuit.gate_names:
        gate = circuit.gate(name)
        # A gate fed twice by the same source would be constant/degenerate;
        # Gate construction forbids duplicates, so flag self-loops through
        # a single buffer chain instead (x = BUF(x) is impossible — cycle —
        # but XOR(a, a) style degeneracy can arrive via aliased buffers).
        if gate.arity >= 2:
            sources = {_root_through_buffers(circuit, f) for f in gate.fanins}
            if len(sources) == 1:
                issues.constant_candidates.append(name)
    return issues


def _root_through_buffers(circuit: Circuit, name: str) -> str:
    """Follow BUF chains back to the driving non-buffer net."""
    from repro.netlist.gate import GateType

    seen = set()
    while name not in seen:
        seen.add(name)
        gate = circuit.gate(name)
        if gate.gate_type is GateType.BUF:
            name = gate.fanins[0]
        else:
            break
    return name
