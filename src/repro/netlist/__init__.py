"""Gate-level netlist substrate.

This subpackage provides the circuit model that the whole reproduction is
built on: a directed graph of logic gates (:class:`~repro.netlist.circuit.Circuit`),
an ISCAS ``.bench`` reader/writer, fluent construction helpers, the exact
C17 benchmark, a structural array-multiplier generator (the C6288
stand-in) and a seeded synthetic generator for ISCAS85-profile circuits.
"""

from repro.netlist.gate import Gate, GateType
from repro.netlist.circuit import Circuit, CircuitStats
from repro.netlist.compiled import CompiledGraph, compile_circuit, csr_gather
from repro.netlist.builder import CircuitBuilder
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench, write_bench_file
from repro.netlist.benchmarks import (
    C17_PAPER_OPTIMUM,
    ISCAS85_PROFILES,
    TABLE1_CIRCUITS,
    CircuitProfile,
    c17,
    c17_paper_naming,
    load_iscas85,
    table1_circuits,
)
from repro.netlist.generate import generate_iscas_like, GeneratorConfig
from repro.netlist.multiplier import array_multiplier
from repro.netlist.arrays import WaveArray, wave_array
from repro.netlist.adders import full_adder_gates, half_adder_gates
from repro.netlist.transforms import buffer_high_fanout, extract_subcircuit, sweep_buffers

__all__ = [
    "Gate",
    "GateType",
    "Circuit",
    "CircuitStats",
    "CompiledGraph",
    "compile_circuit",
    "csr_gather",
    "CircuitBuilder",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "write_bench_file",
    "ISCAS85_PROFILES",
    "TABLE1_CIRCUITS",
    "C17_PAPER_OPTIMUM",
    "CircuitProfile",
    "c17",
    "c17_paper_naming",
    "load_iscas85",
    "table1_circuits",
    "generate_iscas_like",
    "GeneratorConfig",
    "array_multiplier",
    "WaveArray",
    "wave_array",
    "full_adder_gates",
    "half_adder_gates",
    "buffer_high_fanout",
    "sweep_buffers",
    "extract_subcircuit",
]
