"""The :class:`CompiledGraph` kernel — the circuit DAG as dense arrays.

Every downstream layer (bit-parallel simulation, the capped separation
matrix, transition-time sets, levelised timing, partition evaluation)
traverses the same gate graph.  Instead of each layer re-walking
name-keyed dicts, a :class:`Circuit` compiles itself once into dense
``int32`` indices plus CSR (compressed sparse row) connectivity tables,
and every layer consumes those shared arrays:

* **node space** — all nodes (primary inputs first-class), indexed by
  position in :attr:`Circuit.all_names`;
* **gate space** — logic gates only, indexed by
  :attr:`Circuit.gate_index` (the space partition/evaluation works in);
* **CSR tables** — directed fanin (declaration order preserved, which
  matters for tie-breaking in path extraction), directed fanout,
  undirected node adjacency, and undirected gate-gate adjacency
  (sorted rows, matching :attr:`Circuit.gate_neighbors`);
* **order** — topological order, unit-delay levels, and per-level gate
  groups with ready-made ``reduceat`` offsets over the fanin table;
* **simulation schedule** — per (level, base-op) batches with
  rectangular fanin matrices (padded with identity rows) and per-gate
  inversion words, so one gate evaluation step is a single vectorised
  numpy reduction over a whole batch.

Access it through :attr:`Circuit.compiled`; construction is cached and
safe because circuits are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.netlist.gate import GateType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netlist.circuit import Circuit

__all__ = [
    "CompiledGraph",
    "FusedGroup",
    "FusedSchedule",
    "LevelGroup",
    "SimGroup",
    "compile_circuit",
    "csr_gather",
    "level_blocks",
    "GATE_TYPE_CODES",
    "OP_AND",
    "OP_OR",
    "OP_XOR",
]

#: Stable small-int code per gate type (index into this tuple).
GATE_TYPE_CODES: tuple[GateType, ...] = (
    GateType.INPUT,
    GateType.BUF,
    GateType.NOT,
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)

_CODE_OF: dict[GateType, int] = {t: i for i, t in enumerate(GATE_TYPE_CODES)}

#: Base bitwise operation codes for simulation groups.  BUF/NOT compile
#: to one-input AND groups (padding with the all-ones identity row), so
#: three ops cover every gate type; inversion is a per-gate XOR word.
OP_AND = 0
OP_OR = 1
OP_XOR = 2

_BASE_OP: dict[GateType, int] = {
    GateType.BUF: OP_AND,
    GateType.NOT: OP_AND,
    GateType.AND: OP_AND,
    GateType.NAND: OP_AND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_OR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XOR,
}

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def csr_gather(
    indptr: np.ndarray, indices: np.ndarray, keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated CSR rows: ``indices[indptr[k]:indptr[k+1]]`` for each
    ``k`` in ``keys``, plus the per-key entry counts.

    The workhorse of batched neighbourhood expansion: one call replaces a
    Python loop over per-node adjacency lists.
    """
    keys = np.asarray(keys, dtype=np.int64)
    starts = indptr[keys].astype(np.int64)
    counts = (indptr[keys + 1] - indptr[keys]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    cum0 = np.cumsum(counts) - counts
    pos = np.arange(total, dtype=np.int64) - np.repeat(cum0, counts)
    return indices[np.repeat(starts, counts) + pos], counts


def level_blocks(level_sizes, max_gates: int) -> np.ndarray:
    """Greedy contiguous partition of a level sequence into blocks.

    Returns the block index per level: levels are packed left to right,
    a new block starting whenever adding the next level would push the
    running gate count past ``max_gates`` (a level larger than the
    budget gets a block of its own).  Every block is a contiguous,
    non-empty run of levels — the invariant the block-structured timing
    maintenance (:class:`~repro.analysis.timing.IncrementalTiming`)
    relies on: a block's fanins come only from the same or earlier
    blocks, so blocks can be recomputed in ascending order.
    """
    sizes = np.asarray(level_sizes, dtype=np.int64)
    block_of = np.zeros(len(sizes), dtype=np.int64)
    block = 0
    acc = 0
    for i, size in enumerate(sizes.tolist()):
        if acc and acc + size > max_gates:
            block += 1
            acc = 0
        acc += size
        block_of[i] = block
    return block_of


@dataclass(frozen=True)
class LevelGroup:
    """All gates of one unit-delay level, with their fanins flattened.

    ``offsets`` are ``reduceat`` segment starts into ``fanins`` (every
    logic gate has at least one fanin, so segments are non-empty).
    """

    nodes: np.ndarray  # (g,) int32 node ids, gate file order
    fanins: np.ndarray  # (e,) int32 fanin node ids, declaration order
    offsets: np.ndarray  # (g,) int64 segment starts into ``fanins``

    @property
    def counts(self) -> np.ndarray:
        return np.diff(np.append(self.offsets, len(self.fanins)))


@dataclass(frozen=True)
class SimGroup:
    """One vectorised simulation step: a batch of same-level gates that
    evaluate as ``invert ^ op.reduce(packed[src], axis=1)``."""

    op: int  # OP_AND / OP_OR / OP_XOR
    dst: np.ndarray  # (g,) int32 destination rows (node ids)
    src: np.ndarray  # (g, width) int32 source rows; padded with identity rows
    invert: np.ndarray  # (g, 1) uint64 — 0 or all-ones per gate


@dataclass(frozen=True)
class FusedGroup:
    """One fused dispatch step: same-op gates, possibly from many levels,
    evaluated as one unpadded gather + ``op.reduceat`` over flattened
    fanin segments (every logic gate has >= 1 fanin, so segments are
    non-empty and ``reduceat`` is safe)."""

    op: int  # OP_AND / OP_OR / OP_XOR
    dst: np.ndarray  # (g,) int32 destination rows (node ids)
    fanins: np.ndarray  # (e,) int64 flattened fanin rows, no padding
    offsets: np.ndarray  # (g,) int64 reduceat segment starts into ``fanins``
    invert: np.ndarray  # (g, 1) uint64 — 0 or all-ones per gate
    has_invert: bool  # skip the XOR entirely for non-inverting batches


@dataclass(frozen=True)
class FusedSchedule:
    """The simulation schedule re-batched across levels (see
    :meth:`CompiledGraph.fused_schedule`).

    Two differences from ``sim_groups``: batches fuse same-op gates
    across levels wherever dependences allow (fewer Python-level
    dispatches), and fanins stay flattened instead of being padded to a
    rectangle (no identity-row gather traffic).  ``batch_of_node``
    records each gate's fused batch index — the legality tests assert
    every gate lands strictly after all of its producers.
    """

    groups: tuple[FusedGroup, ...]
    group_offsets: np.ndarray  # (len(groups) + 1,) int64
    batch_of_node: np.ndarray  # (num_nodes,) int32, -1 for inputs


@dataclass(frozen=True)
class CompiledGraph:
    """Dense-array view of one :class:`Circuit` (see module docstring)."""

    # --- spaces
    num_nodes: int
    num_inputs: int
    num_gates: int
    type_code: np.ndarray  # (num_nodes,) int8, index into GATE_TYPE_CODES
    node_gate: np.ndarray  # (num_nodes,) int32, dense gate id or -1
    gate_node: np.ndarray  # (num_gates,) int32 node id per gate
    input_node: np.ndarray  # (num_inputs,) int32 node id per primary input
    # --- connectivity (node space)
    fanin_indptr: np.ndarray  # (num_nodes + 1,) int32
    fanin_indices: np.ndarray  # int32, declaration order within a row
    fanout_indptr: np.ndarray
    fanout_indices: np.ndarray
    adj_indptr: np.ndarray  # undirected; rows sorted ascending
    adj_indices: np.ndarray
    # --- connectivity (gate space, undirected, rows sorted ascending)
    gate_adj_indptr: np.ndarray
    gate_adj_indices: np.ndarray
    # --- order
    topo: np.ndarray  # (num_nodes,) int32 node ids, inputs-first topological order
    level: np.ndarray  # (num_nodes,) int32 unit-delay level (inputs 0)
    gate_level: np.ndarray  # (num_gates,) int32
    depth: int
    level_groups: tuple[LevelGroup, ...]  # levels 1..depth
    # --- simulation schedule
    sim_groups: tuple[SimGroup, ...]
    # Extra packed rows appended after the node rows: an all-zeros row
    # (OR/XOR identity) and an all-ones row (AND identity).
    zero_row: int
    ones_row: int
    # --- simulation slots: the schedule flattened into one global order.
    # Concatenating every group's ``dst`` assigns each logic gate exactly
    # one *slot*; ascending slot order IS evaluation order, which lets a
    # consumer re-run an arbitrary gate subset (e.g. one fault's output
    # cone) by bucketing its slots into contiguous group segments.
    sim_group_offsets: np.ndarray  # (len(sim_groups) + 1,) int64 slot starts
    slot_of_node: np.ndarray  # (num_nodes,) int32 slot id, -1 for inputs
    node_of_slot: np.ndarray  # (num_gates,) int32 node id per slot

    # ------------------------------------------------------------- conveniences
    @property
    def num_sim_rows(self) -> int:
        """Row count of a simulation state matrix (nodes + identity rows)."""
        return self.num_nodes + 2

    def fused_schedule(self) -> FusedSchedule:
        """The simulation schedule fused across levels (cached).

        ``sim_groups`` batches strictly per (level, base op): a deep
        circuit dispatches ~3 batches per level from Python even when
        consecutive levels' batches are independent.  The fused plan
        re-batches greedily: gates are visited in slot (evaluation)
        order and each is appended to the earliest same-op batch that
        executes after all of its fanin producers' batches.  **Fusion
        legality rule:** a gate may join batch ``b`` iff
        ``b > batch(p)`` for every fanin producer ``p`` — a batch reads
        state as of its start, so no member may read another member's
        output.  Topological construction makes the greedy choice safe:
        consumers are placed after their producers by definition.

        The result evaluates bit-identically to ``sim_groups`` (bitwise
        reductions are exact and segment order preserves each gate's
        fanin order) with fewer, larger, unpadded dispatches.
        """
        cached = self.__dict__.get("_fused_schedule")
        if cached is None:
            cached = _build_fused_schedule(self)
            object.__setattr__(self, "_fused_schedule", cached)
        return cached

    def group_of_slot(self) -> np.ndarray:
        """Sim-group id per simulation slot (cached).

        The inverse of :attr:`sim_group_offsets` as a direct int32
        lookup — event-driven consumers map a slot to its schedule
        batch without a ``searchsorted`` per event.
        """
        cached = self.__dict__.get("_group_of_slot")
        if cached is None:
            cached = np.repeat(
                np.arange(len(self.sim_groups), dtype=np.int32),
                np.diff(self.sim_group_offsets),
            )
            object.__setattr__(self, "_group_of_slot", cached)
        return cached

    def slot_closure(self) -> np.ndarray:
        """Per-node reachable-slot bitsets (cached).

        ``slot_closure()[n]`` ORs the simulation-slot bits of every gate
        reachable from node ``n`` through the fanout CSR (including
        ``n`` itself when it is a gate) — the fault cone structure the
        stuck-at engine introduced, shared here so the incremental
        event-driven backend can reuse it for flip-neighbourhood
        propagation.  Built by one reverse-topological sweep.
        """
        cached = self.__dict__.get("_slot_closure")
        if cached is None:
            slot_words = (self.num_gates + 63) // 64
            closure = np.zeros((self.num_nodes, slot_words), dtype=np.uint64)
            slots = np.arange(self.num_gates, dtype=np.uint64)
            closure[self.node_of_slot, (slots // np.uint64(64)).astype(np.int64)] = (
                np.uint64(1) << (slots % np.uint64(64))
            )
            indptr, indices = self.fanout_indptr, self.fanout_indices
            for node in self.topo[::-1]:
                row = indices[indptr[node] : indptr[node + 1]]
                if len(row):
                    closure[node] |= np.bitwise_or.reduce(closure[row], axis=0)
            object.__setattr__(self, "_slot_closure", closure)
            cached = closure
        return cached

    def gate_fanins(self, gate: int) -> np.ndarray:
        """Fanin node ids of one gate (declaration order)."""
        node = self.gate_node[gate]
        return self.fanin_indices[self.fanin_indptr[node] : self.fanin_indptr[node + 1]]

    def gate_neighbor_rows(self) -> Iterator[np.ndarray]:
        """Per-gate undirected gate-space neighbour rows, gate order."""
        for g in range(self.num_gates):
            yield self.gate_adj_indices[
                self.gate_adj_indptr[g] : self.gate_adj_indptr[g + 1]
            ]


def _csr_from_lists(rows: list[np.ndarray], dtype=np.int32) -> tuple[np.ndarray, np.ndarray]:
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(r) for r in rows], out=indptr[1:])
    indices = (
        np.concatenate(rows).astype(dtype)
        if indptr[-1]
        else np.empty(0, dtype=dtype)
    )
    return indptr.astype(np.int32), indices


def compile_circuit(circuit: "Circuit") -> CompiledGraph:
    """Compile ``circuit`` into its dense-array form (see module docstring)."""
    names = circuit.all_names
    node_index = {name: i for i, name in enumerate(names)}
    num_nodes = len(names)

    gates = [circuit.gate(name) for name in names]
    type_code = np.asarray([_CODE_OF[g.gate_type] for g in gates], dtype=np.int8)

    gate_names = circuit.gate_names
    num_gates = len(gate_names)
    gate_node = np.asarray([node_index[n] for n in gate_names], dtype=np.int32)
    node_gate = np.full(num_nodes, -1, dtype=np.int32)
    node_gate[gate_node] = np.arange(num_gates, dtype=np.int32)
    input_node = np.asarray(
        [node_index[n] for n in circuit.input_names], dtype=np.int32
    )

    # Directed CSR tables (declaration order for fanins, file order for
    # fanouts — both match the dict-based structure they replace).
    fanin_rows = [
        np.asarray([node_index[f] for f in g.fanins], dtype=np.int32) for g in gates
    ]
    fanin_indptr, fanin_indices = _csr_from_lists(fanin_rows)
    fanouts = circuit.fanouts
    fanout_rows = [
        np.asarray([node_index[s] for s in fanouts[name]], dtype=np.int32)
        for name in names
    ]
    fanout_indptr, fanout_indices = _csr_from_lists(fanout_rows)

    # Undirected adjacency: union of fanins and fanouts, sorted by id.
    adj_rows = [
        np.unique(np.concatenate((fanin_rows[i], fanout_rows[i])))
        if len(fanin_rows[i]) or len(fanout_rows[i])
        else np.empty(0, dtype=np.int32)
        for i in range(num_nodes)
    ]
    adj_indptr, adj_indices = _csr_from_lists(adj_rows)

    # Gate-space undirected adjacency (primary inputs dropped), sorted —
    # identical rows to the legacy ``Circuit.gate_neighbors`` tuples.
    gate_adj_rows = []
    for g in range(num_gates):
        nbrs = node_gate[adj_rows[gate_node[g]]]
        gate_adj_rows.append(np.unique(nbrs[nbrs >= 0]).astype(np.int32))
    gate_adj_indptr, gate_adj_indices = _csr_from_lists(gate_adj_rows)

    topo = np.asarray(
        [node_index[n] for n in circuit.topological_order], dtype=np.int32
    )
    levels = circuit.levels
    level = np.asarray([levels[n] for n in names], dtype=np.int32)
    gate_level = level[gate_node]
    depth = int(circuit.depth)

    # Per-level gate groups in gate file order, with flattened fanins.
    level_groups: list[LevelGroup] = []
    for lvl in range(1, depth + 1):
        sel = np.nonzero(gate_level == lvl)[0]
        nodes = gate_node[sel]
        rows = [fanin_rows[n] for n in nodes]
        counts = np.asarray([len(r) for r in rows], dtype=np.int64)
        offsets = np.cumsum(counts) - counts
        fanins = (
            np.concatenate(rows) if len(rows) else np.empty(0, dtype=np.int32)
        )
        level_groups.append(LevelGroup(nodes=nodes, fanins=fanins, offsets=offsets))

    zero_row = num_nodes
    ones_row = num_nodes + 1
    sim_groups = _build_sim_groups(
        level_groups, type_code, zero_row, ones_row
    )

    # Flatten the schedule into global slots (see the field comments).
    sim_group_offsets = np.zeros(len(sim_groups) + 1, dtype=np.int64)
    np.cumsum([len(g.dst) for g in sim_groups], out=sim_group_offsets[1:])
    node_of_slot = (
        np.concatenate([g.dst for g in sim_groups]).astype(np.int32)
        if sim_groups
        else np.empty(0, dtype=np.int32)
    )
    slot_of_node = np.full(num_nodes, -1, dtype=np.int32)
    slot_of_node[node_of_slot] = np.arange(len(node_of_slot), dtype=np.int32)

    return CompiledGraph(
        num_nodes=num_nodes,
        num_inputs=len(input_node),
        num_gates=num_gates,
        type_code=type_code,
        node_gate=node_gate,
        gate_node=gate_node,
        input_node=input_node,
        fanin_indptr=fanin_indptr,
        fanin_indices=fanin_indices,
        fanout_indptr=fanout_indptr,
        fanout_indices=fanout_indices,
        adj_indptr=adj_indptr,
        adj_indices=adj_indices,
        gate_adj_indptr=gate_adj_indptr,
        gate_adj_indices=gate_adj_indices,
        topo=topo,
        level=level,
        gate_level=gate_level,
        depth=depth,
        level_groups=tuple(level_groups),
        sim_groups=tuple(sim_groups),
        zero_row=zero_row,
        ones_row=ones_row,
        sim_group_offsets=sim_group_offsets,
        slot_of_node=slot_of_node,
        node_of_slot=node_of_slot,
    )


def _build_sim_groups(
    level_groups: list[LevelGroup],
    type_code: np.ndarray,
    zero_row: int,
    ones_row: int,
) -> list[SimGroup]:
    """Batch each level's gates by base op into rectangular fanin matrices.

    Within a batch all gates share one bitwise reduction; shorter fanin
    lists are padded with the op's identity row (all-ones for AND,
    all-zeros for OR/XOR), and inverting types (NOT/NAND/NOR/XNOR) get an
    all-ones inversion word applied after the reduction.
    """
    groups: list[SimGroup] = []
    for lg in level_groups:
        counts = lg.counts
        buckets: dict[int, list[int]] = {}
        for pos, node in enumerate(lg.nodes):
            gt = GATE_TYPE_CODES[type_code[node]]
            buckets.setdefault(_BASE_OP[gt], []).append(pos)
        for op in sorted(buckets):
            positions = buckets[op]
            width = max(int(counts[p]) for p in positions)
            pad = ones_row if op == OP_AND else zero_row
            src = np.full((len(positions), width), pad, dtype=np.int32)
            dst = np.empty(len(positions), dtype=np.int32)
            invert = np.zeros((len(positions), 1), dtype=np.uint64)
            for i, p in enumerate(positions):
                node = lg.nodes[p]
                dst[i] = node
                start = lg.offsets[p]
                src[i, : counts[p]] = lg.fanins[start : start + counts[p]]
                if GATE_TYPE_CODES[type_code[node]].is_inverting:
                    invert[i, 0] = _ALL_ONES
            groups.append(SimGroup(op=op, dst=dst, src=src, invert=invert))
    return groups


def _build_fused_schedule(cg: CompiledGraph) -> FusedSchedule:
    """Greedy cross-level batch fusion (see :meth:`CompiledGraph.fused_schedule`)."""
    from bisect import bisect_left

    batch_ops: list[int] = []
    batch_members: list[list[int]] = []
    op_batches: dict[int, list[int]] = {OP_AND: [], OP_OR: [], OP_XOR: []}
    batch_of = np.full(cg.num_nodes, -1, dtype=np.int32)
    indptr, indices = cg.fanin_indptr, cg.fanin_indices
    type_code = cg.type_code
    for node in cg.node_of_slot:
        node = int(node)
        op = _BASE_OP[GATE_TYPE_CODES[type_code[node]]]
        min_batch = 0
        for f in indices[indptr[node] : indptr[node + 1]]:
            producer = batch_of[f]  # -1 for primary inputs
            if producer >= min_batch:
                min_batch = producer + 1
        candidates = op_batches[op]  # ascending batch ids
        i = bisect_left(candidates, min_batch)
        if i < len(candidates):
            b = candidates[i]
        else:
            b = len(batch_ops)
            batch_ops.append(op)
            batch_members.append([])
            candidates.append(b)
        batch_members[b].append(node)
        batch_of[node] = b

    groups: list[FusedGroup] = []
    for op, members in zip(batch_ops, batch_members):
        dst = np.asarray(members, dtype=np.int32)
        flat: list[np.ndarray] = []
        offsets = np.empty(len(members), dtype=np.int64)
        invert = np.zeros((len(members), 1), dtype=np.uint64)
        total = 0
        for i, node in enumerate(members):
            row = indices[indptr[node] : indptr[node + 1]]
            offsets[i] = total
            total += len(row)
            flat.append(row)
            if GATE_TYPE_CODES[type_code[node]].is_inverting:
                invert[i, 0] = _ALL_ONES
        groups.append(
            FusedGroup(
                op=op,
                dst=dst,
                fanins=np.concatenate(flat).astype(np.int64),
                offsets=offsets,
                invert=invert,
                has_invert=bool(invert.any()),
            )
        )

    group_offsets = np.zeros(len(groups) + 1, dtype=np.int64)
    np.cumsum([len(g.dst) for g in groups], out=group_offsets[1:])
    return FusedSchedule(
        groups=tuple(groups),
        group_offsets=group_offsets,
        batch_of_node=batch_of,
    )
