"""Structural n x n array multiplier — the C6288 stand-in.

C6288, one of the six Table 1 circuits, is a 16x16 array multiplier.  We
generate the classic unsigned array multiplier: an n x n grid of AND
partial-product cells feeding rows of ripple adders.  The generator also
reports which gates belong to which (row, column) array cell, which the
Figure 2 experiment uses to build "shaped" partitions (row-wise vs
column-wise groups) and show their effect on required sensor size.

The real C6288 is implemented NOR-only (2406 gates); our AND/XOR/OR
decomposition lands at ~1400-1500 gates for n=16 — the same order, same
array structure, and (crucially for the paper's argument) the same
wave-like switching pattern where cells on a common anti-diagonal switch
at similar times while cells in a common column switch at very different
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.netlist.adders import full_adder_gates, half_adder_gates
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType

__all__ = ["ArrayMultiplier", "array_multiplier"]


@dataclass(frozen=True)
class ArrayMultiplier:
    """An array multiplier circuit plus its cell grid.

    Attributes:
        circuit: the generated netlist; inputs ``a0..a(n-1)``,
            ``b0..b(n-1)``; outputs ``out0..out(2n-1)``.
        n: operand width.
        cells: maps ``(row, column)`` to the gate names of that array
            cell.  Row 0 holds the first partial-product row; rows
            ``1..n-1`` each hold a partial product AND plus its adder.
    """

    circuit: Circuit
    n: int
    cells: Mapping[tuple[int, int], tuple[str, ...]]

    @property
    def rows(self) -> int:
        return self.n

    @property
    def columns(self) -> int:
        return self.n

    def row_gates(self, row: int) -> tuple[str, ...]:
        """All gate names in array row ``row`` (order: by column)."""
        names: list[str] = []
        for col in range(self.n):
            names.extend(self.cells.get((row, col), ()))
        return tuple(names)

    def column_gates(self, col: int) -> tuple[str, ...]:
        """All gate names in array column ``col`` (order: by row)."""
        names: list[str] = []
        for row in range(self.n):
            names.extend(self.cells.get((row, col), ()))
        return tuple(names)


def array_multiplier(n: int, name: str | None = None) -> ArrayMultiplier:
    """Generate an unsigned ``n x n`` array multiplier.

    The construction accumulates partial-product rows with ripple-carry
    adder rows:

    * row 0 is the raw partial products ``a_j AND b_0``;
    * each later row ``i`` adds partial products ``a_j AND b_i`` to the
      running sum, emitting one final product bit per row;
    * after the last row the remaining sum bits are the high product bits.

    The output provably equals integer multiplication — the test suite
    simulates the netlist against ``a * b`` for random operands.
    """
    if n < 2:
        raise ValueError(f"multiplier width must be >= 2, got {n}")
    builder = CircuitBuilder(name or f"mult{n}x{n}")
    cells: dict[tuple[int, int], list[str]] = {}

    a = [f"a{j}" for j in range(n)]
    b = [f"b{i}" for i in range(n)]
    for net in a + b:
        builder.input(net)

    def cell(row: int, col: int) -> list[str]:
        return cells.setdefault((row, col), [])

    # Partial products p[i][j] = a[j] AND b[i]; cell ownership by (i, j).
    pp = [[f"p_{i}_{j}" for j in range(n)] for i in range(n)]
    for i in range(n):
        for j in range(n):
            builder.gate(pp[i][j], GateType.AND, [a[j], b[i]])
            cell(i, j).append(pp[i][j])

    outputs: list[str] = [pp[0][0]]
    # Remaining accumulated bits after emitting out[0]; weights 1..n-1.
    remaining: list[str] = [pp[0][j] for j in range(1, n)]

    for i in range(1, n):
        row_bits = pp[i]
        new_remaining: list[str] = []
        carry: str | None = None
        width = len(row_bits)
        for k in range(width):
            prefix = f"r{i}_c{k}"
            addend = remaining[k] if k < len(remaining) else None
            if addend is not None and carry is not None:
                s, carry = full_adder_gates(builder, row_bits[k], addend, carry, prefix)
                emitted = [f"{prefix}_p", f"{prefix}_s", f"{prefix}_g", f"{prefix}_t", f"{prefix}_c"]
            elif addend is not None:
                s, carry = half_adder_gates(builder, row_bits[k], addend, prefix)
                emitted = [f"{prefix}_s", f"{prefix}_c"]
            elif carry is not None:
                s, carry = half_adder_gates(builder, row_bits[k], carry, prefix)
                emitted = [f"{prefix}_s", f"{prefix}_c"]
            else:
                s, carry = row_bits[k], None
                emitted = []
            cell(i, k).extend(emitted)
            if k == 0:
                outputs.append(s)
            else:
                new_remaining.append(s)
        if carry is not None:
            new_remaining.append(carry)
        remaining = new_remaining

    # After the last row the remaining bits are the high product bits.
    outputs.extend(remaining)
    if len(outputs) != 2 * n:
        raise AssertionError(
            f"array multiplier emitted {len(outputs)} product bits, expected {2 * n}"
        )
    for index, net in enumerate(outputs):
        out_name = f"out{index}"
        builder.gate(out_name, GateType.BUF, [net])
        builder.output(out_name)

    circuit = builder.build()
    return ArrayMultiplier(
        circuit=circuit,
        n=n,
        cells={key: tuple(names) for key, names in cells.items()},
    )
