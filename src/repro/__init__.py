"""repro — reproduction of Wunderlich et al., "Synthesis of IDDQ-Testable
Circuits: Integrating Built-In Current Sensors" (ED&TC 1995).

The library partitions a gate-level circuit into modules, sizes one
built-in current (BIC) sensor per module, and optimises the partition
with the paper's evolution strategy under discriminability and
virtual-rail constraints.  See :mod:`repro.flow` for the end-to-end
entry point and :mod:`repro.experiments` for the paper's evaluation.

Quickstart::

    from repro import synthesize_iddq_testable
    from repro.netlist import c17

    design = synthesize_iddq_testable(c17(), seed=7)
    print(design.report())
"""

from repro.errors import (
    BenchFormatError,
    ConstraintError,
    ExperimentError,
    FaultSimError,
    LibraryError,
    NetlistError,
    OptimizationError,
    PartitionError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "NetlistError",
    "BenchFormatError",
    "LibraryError",
    "PartitionError",
    "ConstraintError",
    "OptimizationError",
    "FaultSimError",
    "ExperimentError",
    "synthesize_iddq_testable",
]


def __getattr__(name: str):
    # Lazy import of the heavyweight flow entry point so that importing
    # repro for netlist-only use stays fast.
    if name == "synthesize_iddq_testable":
        from repro.flow.synthesis import synthesize_iddq_testable

        return synthesize_iddq_testable
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
