"""Test application time (paper §3.4).

Per vector the tester must wait for the degraded propagation delay
``D_BIC``, for the transient iDD to decay, and for the sensors to decide
— the ``Δ(τ)`` term.  All module sensors sense in parallel (each has its
own detection circuitry), so the slowest sensor paces the vector.  The
total test time is the per-vector time multiplied by the (unchanged)
vector count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partition.evaluator import PartitionEvaluation

__all__ = ["TestTimeReport", "test_application_time"]


@dataclass(frozen=True)
class TestTimeReport:
    """Absolute and relative test-time figures for one partition."""

    num_vectors: int
    vector_time_ns: float
    total_time_us: float
    baseline_vector_time_ns: float
    overhead: float

    def summary(self) -> str:
        return (
            f"{self.num_vectors} vectors x {self.vector_time_ns:.2f} ns = "
            f"{self.total_time_us:.3f} us ({100 * self.overhead:.2f}% over the "
            f"sensor-less vector time)"
        )


def test_application_time(
    evaluation: PartitionEvaluation, num_vectors: int
) -> TestTimeReport:
    """Test time for ``num_vectors`` under an evaluated partition.

    The per-vector time is ``D_BIC + max_i Δ(τ_i)``; the baseline
    (sensor-less logic test) paces vectors at ``D``.
    """
    settle = max(module.settle_time_ns for module in evaluation.modules)
    vector_time = evaluation.degraded_delay_ns + settle
    baseline = evaluation.nominal_delay_ns
    return TestTimeReport(
        num_vectors=num_vectors,
        vector_time_ns=vector_time,
        total_time_us=num_vectors * vector_time * 1e-3,
        baseline_vector_time_ns=baseline,
        overhead=(vector_time - baseline) / baseline,
    )
