"""Bit-parallel combinational logic simulation.

Patterns are packed 64 per machine word; each node's value across all
patterns is a small ``uint64`` array, and a gate evaluation is a couple
of vectorised bitwise operations.  Even the 3512-gate C7552 stand-in
simulates thousands of patterns per millisecond this way — fast enough
that IDDQ coverage experiments run inside the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultSimError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType

__all__ = ["NodeValues", "LogicSimulator"]

_WORD = 64


class NodeValues:
    """Packed simulation results: one bit per (node, pattern).

    Access patterns:
    * :meth:`value` — single node/pattern bit (tests, debugging);
    * :meth:`unpack` — dense ``uint8`` matrix (patterns x nodes);
    * :attr:`packed` + :attr:`row_of` — raw words for vectorised
      consumers (the IDDQ computation and defect activation).
    """

    def __init__(self, packed: np.ndarray, row_of: dict[str, int], num_patterns: int):
        self.packed = packed
        self.row_of = row_of
        self.num_patterns = num_patterns

    def value(self, node: str, pattern: int) -> int:
        if not 0 <= pattern < self.num_patterns:
            raise FaultSimError(
                f"pattern {pattern} out of range 0..{self.num_patterns - 1}"
            )
        row = self.row_of[node]
        word, bit = divmod(pattern, _WORD)
        return int((self.packed[row, word] >> np.uint64(bit)) & np.uint64(1))

    def node_bits(self, node: str) -> np.ndarray:
        """Unpacked 0/1 vector over patterns for one node."""
        row = self.packed[self.row_of[node]]
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        return bits[: self.num_patterns]

    def unpack(self, nodes) -> np.ndarray:
        """Dense ``(num_patterns, len(nodes))`` matrix of 0/1 values."""
        columns = [self.node_bits(node) for node in nodes]
        return np.stack(columns, axis=1) if columns else np.zeros((self.num_patterns, 0), np.uint8)


class LogicSimulator:
    """Compiled bit-parallel simulator for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.row_of = {name: i for i, name in enumerate(circuit.all_names)}
        # Compile the evaluation schedule once: (row, type, fanin rows).
        self._schedule: list[tuple[int, GateType, tuple[int, ...]]] = []
        for name in circuit.topological_order:
            gate = circuit.gate(name)
            if gate.gate_type.is_input:
                continue
            rows = tuple(self.row_of[f] for f in gate.fanins)
            self._schedule.append((self.row_of[name], gate.gate_type, rows))

    def simulate(self, input_patterns: np.ndarray) -> NodeValues:
        """Simulate a ``(num_patterns, num_inputs)`` 0/1 matrix.

        Input columns follow :attr:`Circuit.input_names` order.
        """
        patterns = np.asarray(input_patterns)
        if patterns.ndim != 2 or patterns.shape[1] != len(self.circuit.input_names):
            raise FaultSimError(
                f"expected (patterns, {len(self.circuit.input_names)}) input matrix, "
                f"got shape {patterns.shape}"
            )
        num_patterns = patterns.shape[0]
        if num_patterns == 0:
            raise FaultSimError("need at least one pattern")
        num_words = (num_patterns + _WORD - 1) // _WORD
        packed = np.zeros((len(self.row_of), num_words), dtype=np.uint64)

        # Pack inputs column by column.
        for column, name in enumerate(self.circuit.input_names):
            bits = np.zeros(num_words * _WORD, dtype=np.uint8)
            bits[:num_patterns] = patterns[:, column] & 1
            packed[self.row_of[name]] = np.packbits(bits, bitorder="little").view(np.uint64)

        ones = np.full(num_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        for row, gate_type, fanins in self._schedule:
            acc = packed[fanins[0]].copy()
            if gate_type in (GateType.AND, GateType.NAND):
                for f in fanins[1:]:
                    acc &= packed[f]
            elif gate_type in (GateType.OR, GateType.NOR):
                for f in fanins[1:]:
                    acc |= packed[f]
            elif gate_type in (GateType.XOR, GateType.XNOR):
                for f in fanins[1:]:
                    acc ^= packed[f]
            # BUF/NOT fall through with acc = fanin value.
            if gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
                acc ^= ones
            packed[row] = acc
        return NodeValues(packed, self.row_of, num_patterns)

    def simulate_outputs(self, input_patterns: np.ndarray) -> np.ndarray:
        """Convenience: ``(patterns, outputs)`` 0/1 matrix."""
        values = self.simulate(input_patterns)
        return values.unpack(self.circuit.output_names)
