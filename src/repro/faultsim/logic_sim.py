"""Bit-parallel combinational logic simulation.

Patterns are packed 64 per machine word; each node's value across all
patterns is a small ``uint64`` array.  The simulator runs the compiled
graph's level-grouped schedule (:attr:`CompiledGraph.sim_groups`): one
batch of same-level gates evaluates as a single vectorised bitwise
reduction over a rectangular fanin matrix, so there is no per-gate
Python dispatch at all.  Even the 3512-gate C7552 stand-in simulates
thousands of patterns per millisecond this way — fast enough that IDDQ
coverage experiments run inside the test suite.

:class:`ReferenceLogicSimulator` keeps the original per-gate schedule as
the executable specification; the equivalence suite asserts both produce
bit-identical packed words.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultSimError
from repro.netlist.circuit import Circuit
from repro.netlist.compiled import OP_AND, OP_OR
from repro.netlist.gate import GateType

__all__ = ["NodeValues", "LogicSimulator", "ReferenceLogicSimulator"]

_WORD = 64
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class NodeValues:
    """Packed simulation results: one bit per (node, pattern).

    Access patterns:
    * :meth:`value` — single node/pattern bit (tests, debugging);
    * :meth:`unpack` — dense ``uint8`` matrix (patterns x nodes);
    * :attr:`packed` + :attr:`row_of` — raw words for vectorised
      consumers (the IDDQ computation and defect activation).
    """

    def __init__(self, packed: np.ndarray, row_of: dict[str, int], num_patterns: int):
        self.packed = packed
        self.row_of = row_of
        self.num_patterns = num_patterns

    def value(self, node: str, pattern: int) -> int:
        if not 0 <= pattern < self.num_patterns:
            raise FaultSimError(
                f"pattern {pattern} out of range 0..{self.num_patterns - 1}"
            )
        row = self.row_of[node]
        word, bit = divmod(pattern, _WORD)
        return int((self.packed[row, word] >> np.uint64(bit)) & np.uint64(1))

    def node_bits(self, node: str) -> np.ndarray:
        """Unpacked 0/1 vector over patterns for one node."""
        row = self.packed[self.row_of[node]]
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        return bits[: self.num_patterns]

    def unpack(self, nodes) -> np.ndarray:
        """Dense ``(num_patterns, len(nodes))`` matrix of 0/1 values."""
        nodes = list(nodes)
        if not nodes:
            return np.zeros((self.num_patterns, 0), np.uint8)
        rows = np.asarray([self.row_of[node] for node in nodes], dtype=np.int64)
        bits = np.unpackbits(
            np.ascontiguousarray(self.packed[rows]).view(np.uint8),
            axis=1,
            bitorder="little",
        )
        return bits[:, : self.num_patterns].T.copy()


def _pack_input_columns(patterns: np.ndarray, num_words: int) -> np.ndarray:
    """Pack a ``(patterns, inputs)`` 0/1 matrix into per-input word rows."""
    num_patterns = patterns.shape[0]
    bits = np.zeros((patterns.shape[1], num_words * _WORD), dtype=np.uint8)
    bits[:, :num_patterns] = (patterns.T & 1).astype(np.uint8)
    return np.packbits(bits, axis=1, bitorder="little").view(np.uint64)


class LogicSimulator:
    """Compiled bit-parallel simulator for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.compiled = circuit.compiled
        self.row_of = {name: i for i, name in enumerate(circuit.all_names)}

    def _check_patterns(self, input_patterns: np.ndarray) -> np.ndarray:
        patterns = np.asarray(input_patterns)
        if patterns.ndim != 2 or patterns.shape[1] != len(self.circuit.input_names):
            raise FaultSimError(
                f"expected (patterns, {len(self.circuit.input_names)}) input matrix, "
                f"got shape {patterns.shape}"
            )
        if patterns.shape[0] == 0:
            raise FaultSimError("need at least one pattern")
        return patterns

    def simulate(
        self, input_patterns: np.ndarray, pinned: dict[str, int] | None = None
    ) -> NodeValues:
        """Simulate a ``(num_patterns, num_inputs)`` 0/1 matrix.

        Input columns follow :attr:`Circuit.input_names` order.  ``pinned``
        optionally forces named nets to a constant 0/1 across all patterns
        (the stuck-at fault simulator's injection mechanism).
        """
        patterns = self._check_patterns(input_patterns)
        num_patterns = patterns.shape[0]
        num_words = (num_patterns + _WORD - 1) // _WORD
        cg = self.compiled

        # Node rows plus the two identity rows the padded schedule reads.
        packed = np.zeros((cg.num_sim_rows, num_words), dtype=np.uint64)
        packed[cg.ones_row] = _ONES
        packed[cg.input_node] = _pack_input_columns(patterns, num_words)

        pinned_rows = np.empty(0, dtype=np.int32)
        if pinned:
            rows = []
            for name, value in pinned.items():
                row = self.row_of.get(name)
                if row is None:
                    raise FaultSimError(f"unknown net {name!r}")
                packed[row] = _ONES if value else np.uint64(0)
                rows.append(row)
            pinned_rows = np.asarray(rows, dtype=np.int32)

        for group in cg.sim_groups:
            dst, src, invert = group.dst, group.src, group.invert
            if pinned_rows.size:
                keep = ~np.isin(dst, pinned_rows)
                if not keep.all():
                    dst, src, invert = dst[keep], src[keep], invert[keep]
                    if dst.size == 0:
                        continue
            gathered = packed[src]  # (g, width, words)
            if group.op == OP_AND:
                acc = np.bitwise_and.reduce(gathered, axis=1)
            elif group.op == OP_OR:
                acc = np.bitwise_or.reduce(gathered, axis=1)
            else:
                acc = np.bitwise_xor.reduce(gathered, axis=1)
            packed[dst] = acc ^ invert
        return NodeValues(packed[: cg.num_nodes], self.row_of, num_patterns)

    def simulate_outputs(self, input_patterns: np.ndarray) -> np.ndarray:
        """Convenience: ``(patterns, outputs)`` 0/1 matrix."""
        values = self.simulate(input_patterns)
        return values.unpack(self.circuit.output_names)


class ReferenceLogicSimulator:
    """Per-gate schedule simulator — the executable specification.

    This is the pre-compiled-graph implementation, kept verbatim so the
    equivalence tests can assert the batched simulator reproduces its
    packed words bit for bit.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.row_of = {name: i for i, name in enumerate(circuit.all_names)}
        # Compile the evaluation schedule once: (row, type, fanin rows).
        self._schedule: list[tuple[int, GateType, tuple[int, ...]]] = []
        for name in circuit.topological_order:
            gate = circuit.gate(name)
            if gate.gate_type.is_input:
                continue
            rows = tuple(self.row_of[f] for f in gate.fanins)
            self._schedule.append((self.row_of[name], gate.gate_type, rows))

    def simulate(self, input_patterns: np.ndarray) -> NodeValues:
        patterns = np.asarray(input_patterns)
        if patterns.ndim != 2 or patterns.shape[1] != len(self.circuit.input_names):
            raise FaultSimError(
                f"expected (patterns, {len(self.circuit.input_names)}) input matrix, "
                f"got shape {patterns.shape}"
            )
        num_patterns = patterns.shape[0]
        if num_patterns == 0:
            raise FaultSimError("need at least one pattern")
        num_words = (num_patterns + _WORD - 1) // _WORD
        packed = np.zeros((len(self.row_of), num_words), dtype=np.uint64)

        for column, name in enumerate(self.circuit.input_names):
            bits = np.zeros(num_words * _WORD, dtype=np.uint8)
            bits[:num_patterns] = patterns[:, column] & 1
            packed[self.row_of[name]] = np.packbits(bits, bitorder="little").view(np.uint64)

        ones = np.full(num_words, _ONES, dtype=np.uint64)
        for row, gate_type, fanins in self._schedule:
            acc = packed[fanins[0]].copy()
            if gate_type in (GateType.AND, GateType.NAND):
                for f in fanins[1:]:
                    acc &= packed[f]
            elif gate_type in (GateType.OR, GateType.NOR):
                for f in fanins[1:]:
                    acc |= packed[f]
            elif gate_type in (GateType.XOR, GateType.XNOR):
                for f in fanins[1:]:
                    acc ^= packed[f]
            # BUF/NOT fall through with acc = fanin value.
            if gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
                acc ^= ones
            packed[row] = acc
        return NodeValues(packed, self.row_of, num_patterns)

    def simulate_outputs(self, input_patterns: np.ndarray) -> np.ndarray:
        values = self.simulate(input_patterns)
        return values.unpack(self.circuit.output_names)
