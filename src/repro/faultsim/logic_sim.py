"""Bit-parallel combinational logic simulation.

Patterns are packed 64 per machine word; each node's value across all
patterns is a small ``uint64`` array.  The schedule evaluation itself is
owned by a pluggable :class:`~repro.backend.base.SimBackend` (see
:mod:`repro.backend`): the default fused kernel advances a whole batch
of gates per vectorised dispatch, so there is no per-gate Python at
all.  Even the 3512-gate C7552 stand-in simulates thousands of patterns
per millisecond this way — fast enough that IDDQ coverage experiments
run inside the test suite.

Backends that support event-driven replay additionally enable
:meth:`LogicSimulator.simulate_delta`: re-simulating a pattern batch
that differs from an already-simulated one in a few input columns costs
only the flipped inputs' fanout cones.

:class:`ReferenceLogicSimulator` keeps the original per-gate schedule as
the executable specification; the equivalence suite asserts every
backend produces bit-identical packed words.
"""

from __future__ import annotations

import numpy as np

from repro.backend import SimBackend, get_backend
from repro.errors import FaultSimError
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType

__all__ = ["NodeValues", "LogicSimulator", "ReferenceLogicSimulator"]

_WORD = 64
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class NodeValues:
    """Packed simulation results: one bit per (node, pattern).

    Access patterns:
    * :meth:`value` — single node/pattern bit (tests, debugging);
    * :meth:`unpack` — dense ``uint8`` matrix (patterns x nodes);
    * :attr:`packed` + :attr:`row_of` — raw words for vectorised
      consumers (the IDDQ computation and defect activation).
    """

    def __init__(self, packed: np.ndarray, row_of: dict[str, int], num_patterns: int):
        self.packed = packed
        self.row_of = row_of
        self.num_patterns = num_patterns

    def value(self, node: str, pattern: int) -> int:
        if not 0 <= pattern < self.num_patterns:
            raise FaultSimError(
                f"pattern {pattern} out of range 0..{self.num_patterns - 1}"
            )
        row = self.row_of[node]
        word, bit = divmod(pattern, _WORD)
        return int((self.packed[row, word] >> np.uint64(bit)) & np.uint64(1))

    def node_bits(self, node: str) -> np.ndarray:
        """Unpacked 0/1 vector over patterns for one node."""
        row = self.packed[self.row_of[node]]
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        return bits[: self.num_patterns]

    def unpack(self, nodes) -> np.ndarray:
        """Dense ``(num_patterns, len(nodes))`` matrix of 0/1 values."""
        nodes = list(nodes)
        if not nodes:
            return np.zeros((self.num_patterns, 0), np.uint8)
        rows = np.asarray([self.row_of[node] for node in nodes], dtype=np.int64)
        bits = np.unpackbits(
            np.ascontiguousarray(self.packed[rows]).view(np.uint8),
            axis=1,
            bitorder="little",
        )
        return bits[:, : self.num_patterns].T.copy()


def _pack_input_columns(patterns: np.ndarray, num_words: int) -> np.ndarray:
    """Pack a ``(patterns, inputs)`` 0/1 matrix into per-input word rows."""
    num_patterns = patterns.shape[0]
    bits = np.zeros((patterns.shape[1], num_words * _WORD), dtype=np.uint8)
    bits[:, :num_patterns] = (patterns.T & 1).astype(np.uint8)
    return np.packbits(bits, axis=1, bitorder="little").view(np.uint64)


class LogicSimulator:
    """Compiled bit-parallel simulator for one circuit.

    ``backend`` selects the kernel implementation — a registered backend
    name, a :class:`~repro.backend.base.SimBackend` instance, or
    ``None``/``"auto"`` for the configured default (see
    :func:`repro.backend.get_backend`).
    """

    def __init__(self, circuit: Circuit, backend: str | SimBackend | None = None):
        self.circuit = circuit
        self.compiled = circuit.compiled
        self.backend = get_backend(backend)
        self.row_of = {name: i for i, name in enumerate(circuit.all_names)}

    def _check_patterns(self, input_patterns: np.ndarray) -> np.ndarray:
        patterns = np.asarray(input_patterns)
        if patterns.ndim != 2 or patterns.shape[1] != len(self.circuit.input_names):
            raise FaultSimError(
                f"expected (patterns, {len(self.circuit.input_names)}) input matrix, "
                f"got shape {patterns.shape}"
            )
        if patterns.shape[0] == 0:
            raise FaultSimError("need at least one pattern")
        return patterns

    def simulate(
        self, input_patterns: np.ndarray, pinned: dict[str, int] | None = None
    ) -> NodeValues:
        """Simulate a ``(num_patterns, num_inputs)`` 0/1 matrix.

        Input columns follow :attr:`Circuit.input_names` order.  ``pinned``
        optionally forces named nets to a constant 0/1 across all patterns
        (the stuck-at fault simulator's injection mechanism).
        """
        patterns = self._check_patterns(input_patterns)
        num_patterns = patterns.shape[0]
        num_words = (num_patterns + _WORD - 1) // _WORD
        cg = self.compiled

        # Node rows plus the two identity rows the padded schedule reads.
        packed = np.zeros((cg.num_sim_rows, num_words), dtype=np.uint64)
        packed[cg.ones_row] = _ONES
        packed[cg.input_node] = _pack_input_columns(patterns, num_words)

        pinned_rows = np.empty(0, dtype=np.int32)
        if pinned:
            rows = []
            for name, value in pinned.items():
                row = self.row_of.get(name)
                if row is None:
                    raise FaultSimError(f"unknown net {name!r}")
                packed[row] = _ONES if value else np.uint64(0)
                rows.append(row)
            pinned_rows = np.asarray(rows, dtype=np.int32)

        self.backend.run_schedule(cg, packed, pinned_rows)
        return NodeValues(packed[: cg.num_nodes], self.row_of, num_patterns)

    def simulate_delta(
        self,
        baseline: NodeValues,
        input_patterns: np.ndarray,
        return_changed: bool = False,
        changed_cols: np.ndarray | None = None,
    ) -> NodeValues | tuple[NodeValues, np.ndarray]:
        """Re-simulate ``input_patterns`` starting from ``baseline``.

        ``baseline`` must be a *fault-free* result of :meth:`simulate`
        for a batch of the same size; only gates the changed input
        columns' value events actually reach are re-evaluated, and the
        result is bit-identical to ``simulate(input_patterns)``.
        ``baseline`` itself is never mutated.  With ``return_changed``
        the node rows whose packed words differ from the baseline
        (changed inputs + flipped gates) are returned too, so callers
        can patch derived per-node structures.  ``changed_cols``
        optionally names a superset of the input columns that may
        differ (saving the full input re-pack when the caller already
        diffed the batches); columns outside it must be unchanged.

        Falls back to a full :meth:`simulate` when the backend has no
        incremental support or the batch size changed.
        """
        patterns = self._check_patterns(input_patterns)
        num_patterns = patterns.shape[0]
        cg = self.compiled
        if (
            not self.backend.supports_incremental
            or num_patterns != baseline.num_patterns
        ):
            values = self.simulate(patterns)
            if return_changed:
                return values, np.arange(cg.num_nodes, dtype=np.int32)
            return values

        num_words = baseline.packed.shape[1]
        state = np.empty((cg.num_sim_rows, num_words), dtype=np.uint64)
        state[: cg.num_nodes] = baseline.packed
        state[cg.zero_row] = np.uint64(0)
        state[cg.ones_row] = _ONES

        if changed_cols is None:
            new_words = _pack_input_columns(patterns, num_words)
            changed_cols = np.arange(len(cg.input_node), dtype=np.int64)
        else:
            changed_cols = np.asarray(changed_cols, dtype=np.int64)
            new_words = _pack_input_columns(patterns[:, changed_cols], num_words)
        really = np.flatnonzero(
            (new_words != state[cg.input_node[changed_cols]]).any(axis=1)
        )
        changed_cols = changed_cols[really]
        changed_inputs = cg.input_node[changed_cols]
        # Steal the baseline's backend value cache (rows materialised in
        # the backend's working representation).  Stealing — rather than
        # copying — is safe because a baseline without a cache merely
        # re-materialises rows lazily; it lets a walk of consecutive
        # deltas convert each touched row once.
        value_cache = baseline.__dict__.pop("_backend_value_cache", {})
        if changed_cols.size:
            state[changed_inputs] = new_words[really]
            for row in changed_inputs.tolist():
                value_cache.pop(row, None)
            cone = self.backend.run_cone(
                cg, state, changed_inputs, value_cache=value_cache
            )
        else:
            cone = np.empty(0, dtype=np.int32)
        values = NodeValues(state[: cg.num_nodes], self.row_of, num_patterns)
        values._backend_value_cache = value_cache
        if return_changed:
            return values, np.concatenate(
                (changed_inputs.astype(np.int32), cone)
            )
        return values

    def simulate_outputs(self, input_patterns: np.ndarray) -> np.ndarray:
        """Convenience: ``(patterns, outputs)`` 0/1 matrix."""
        values = self.simulate(input_patterns)
        return values.unpack(self.circuit.output_names)


class ReferenceLogicSimulator:
    """Per-gate schedule simulator — the executable specification.

    This is the pre-compiled-graph implementation, kept verbatim so the
    equivalence tests can assert the batched simulator reproduces its
    packed words bit for bit.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.row_of = {name: i for i, name in enumerate(circuit.all_names)}
        # Compile the evaluation schedule once: (row, type, fanin rows).
        self._schedule: list[tuple[int, GateType, tuple[int, ...]]] = []
        for name in circuit.topological_order:
            gate = circuit.gate(name)
            if gate.gate_type.is_input:
                continue
            rows = tuple(self.row_of[f] for f in gate.fanins)
            self._schedule.append((self.row_of[name], gate.gate_type, rows))

    def simulate(self, input_patterns: np.ndarray) -> NodeValues:
        patterns = np.asarray(input_patterns)
        if patterns.ndim != 2 or patterns.shape[1] != len(self.circuit.input_names):
            raise FaultSimError(
                f"expected (patterns, {len(self.circuit.input_names)}) input matrix, "
                f"got shape {patterns.shape}"
            )
        num_patterns = patterns.shape[0]
        if num_patterns == 0:
            raise FaultSimError("need at least one pattern")
        num_words = (num_patterns + _WORD - 1) // _WORD
        packed = np.zeros((len(self.row_of), num_words), dtype=np.uint64)

        for column, name in enumerate(self.circuit.input_names):
            bits = np.zeros(num_words * _WORD, dtype=np.uint8)
            bits[:num_patterns] = patterns[:, column] & 1
            packed[self.row_of[name]] = np.packbits(bits, bitorder="little").view(np.uint64)

        ones = np.full(num_words, _ONES, dtype=np.uint64)
        for row, gate_type, fanins in self._schedule:
            acc = packed[fanins[0]].copy()
            if gate_type in (GateType.AND, GateType.NAND):
                for f in fanins[1:]:
                    acc &= packed[f]
            elif gate_type in (GateType.OR, GateType.NOR):
                for f in fanins[1:]:
                    acc |= packed[f]
            elif gate_type in (GateType.XOR, GateType.XNOR):
                for f in fanins[1:]:
                    acc ^= packed[f]
            # BUF/NOT fall through with acc = fanin value.
            if gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
                acc ^= ones
            packed[row] = acc
        return NodeValues(packed, self.row_of, num_patterns)

    def simulate_outputs(self, input_patterns: np.ndarray) -> np.ndarray:
        values = self.simulate(input_patterns)
        return values.unpack(self.circuit.output_names)
