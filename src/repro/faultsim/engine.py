"""The persistent, vectorised IDDQ coverage engine.

:func:`repro.faultsim.coverage.detection_matrix` and
:func:`~repro.faultsim.coverage.evaluate_coverage` are one-shot
reference implementations: every call rebuilds the
:class:`~repro.faultsim.iddq.IDDQSimulator` (leak tables included),
re-simulates the fault-free circuit, regroups the partition's modules
and loops over defects in Python.  That is fine for a single report and
hopeless inside a search loop — the hill-climbing phase of
:func:`~repro.faultsim.atpg.generate_iddq_tests` evaluates one small
pattern batch per step, thousands of times.

:class:`CoverageEngine` keeps everything reusable alive across calls:

* the :class:`IDDQSimulator` with its per-cell leak tables and
  arity-grouped leakage indexing (built once per engine);
* the last simulated pattern batch — fault-free :class:`NodeValues`
  plus the ``(patterns, gates)`` leakage matrix — keyed by batch
  content, so evaluating two partitions against one vector set
  simulates once;
* per-partition module index groupings (via
  :meth:`IDDQSimulator.module_indices`, keyed on the partition's
  mutation version);
* per-(partition, defect-list) observation structure: a packed
  all-defects activation matrix (built type-grouped with fancy
  indexing over the packed simulation words) and a defect -> observing
  module CSR.

``detection_matrix``/``evaluate_coverage`` then reduce to broadcast
threshold comparisons over (defect, module) pairs — zero per-defect
Python — and reproduce the reference implementations *exactly*: same
floats, same booleans, same report.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro import obs
from repro.backend import SimBackend, get_backend
from repro.faultsim.coverage import CoverageReport, effective_thresholds_ua
from repro.faultsim.faults import BridgingFault, Defect, GateOxideShort, StuckOnTransistor
from repro.faultsim.iddq import IDDQSimulator
from repro.faultsim.logic_sim import NodeValues
from repro.library.default_lib import generic_technology
from repro.library.library import CellLibrary
from repro.library.technology import Technology
from repro.netlist.circuit import Circuit
from repro.partition.partition import Partition

__all__ = ["CoverageEngine"]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class CoverageEngine:
    """Cached, vectorised IDDQ detection/coverage for one circuit.

    One engine per (circuit, library, technology); partitions, defect
    lists and pattern batches vary call to call.  Results are exactly
    those of the reference functions in :mod:`repro.faultsim.coverage`.
    """

    #: Most-recently-used slots for the observation-structure cache.
    _OBS_CACHE_SLOTS = 8

    #: Most-recently-used slots for the simulation-state cache — enough
    #: to hold an ATPG walk's current flip batch, a handful of restart
    #: baselines and the full-pool batch simultaneously.
    _STATE_SLOTS = 8

    #: Fall back to a full re-simulation when more input columns than
    #: this changed against the cached batch — a mostly-new batch (e.g.
    #: a hill-climb restart) touches most of the circuit anyway, so the
    #: event-driven bookkeeping would only add overhead.
    _INCREMENTAL_COL_LIMIT = 4

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary | None = None,
        technology: Technology | None = None,
        backend: str | SimBackend | None = None,
    ):
        self.circuit = circuit
        self.technology = technology or generic_technology()
        self.backend = get_backend(backend)
        self.sim = IDDQSimulator(circuit, library, backend=self.backend)
        # Content-addressed simulation-state cache: batch digest ->
        # [patterns copy, values, unpacked bits, lazy full leakage
        # matrix].  Multiple slots (MRU) so interleaved pattern sets —
        # an ATPG hill-climb's flip batches against the full-pool
        # coverage checks, or several restarts' baselines — reuse each
        # other's simulated state instead of thrashing a single slot.
        # ``_active_key`` names the slot the background cache below is
        # valid for.
        self._state_cache: OrderedDict[
            tuple, list
        ] = OrderedDict()  # key -> [patterns, values, bits, leak|None]
        self._active_key: tuple | None = None
        #: (full resims, incremental patches, content hits) — the
        #: sim-state reuse telemetry the runtime tests assert on; every
        #: bump is mirrored into :data:`repro.obs.METRICS` as
        #: ``engine.state.<key>`` when metrics are enabled.
        self.state_stats = {"full": 0, "patches": 0, "hits": 0}
        self._obs_cache: dict[
            tuple, tuple[Partition, tuple[Defect, ...], np.ndarray, np.ndarray]
        ] = {}
        # Restricted-path background cache: (partition id, version,
        # module) -> [partition, dependency rows, per-gate leak matrix,
        # IDDQ series, dirty row batches].  Valid for the currently
        # cached pattern batch; a full re-simulation clears it, an
        # incremental patch marks only the modules whose gates read a
        # changed row dirty, and a dirty module refreshes just the
        # affected gates' leak rows before re-summing (leakage is a
        # per-gate function of fanin values, so the refreshed series is
        # bit-identical to a fresh computation).
        self._bg_cache: dict[tuple, list] = {}
        # Module dependency rows survive background refreshes (they
        # depend on the partition state only, not on the pattern batch).
        # Entries hold the partition so cached ids cannot be recycled.
        self._dep_cache: dict[tuple, tuple[Partition, np.ndarray]] = {}

    # ------------------------------------------------------------------ public
    def detection_matrix(
        self,
        partition: Partition,
        defects: Sequence[Defect],
        patterns: np.ndarray,
    ) -> np.ndarray:
        """Boolean ``(defects, patterns)`` detection matrix.

        Entry ``[d, p]`` is True when vector ``p`` makes some observing
        module sensor measure at or above its effective threshold.
        """
        matrix, _ = self._detect(partition, defects, patterns)
        return matrix

    def evaluate_coverage(
        self,
        partition: Partition,
        defects: Sequence[Defect],
        patterns: np.ndarray,
    ) -> CoverageReport:
        """Coverage of ``defects`` by ``patterns`` under ``partition``."""
        matrix, thresholds = self._detect(
            partition, defects, patterns, want_report=True
        )
        detected = matrix.any(axis=1)
        detected_ids = tuple(d.defect_id for d, hit in zip(defects, detected) if hit)
        undetected_ids = tuple(
            d.defect_id for d, hit in zip(defects, detected) if not hit
        )
        return CoverageReport(
            num_defects=len(defects),
            num_detected=int(detected.sum()),
            detected_ids=detected_ids,
            undetected_ids=undetected_ids,
            num_patterns=patterns.shape[0],
            num_modules=partition.num_modules,
            thresholds_ua=thresholds,
        )

    def prepared_values(self, patterns: np.ndarray) -> NodeValues:
        """Fault-free simulation of ``patterns`` (content-cached)."""
        return self._prepare(patterns)[0]

    # ---------------------------------------------------------------- internal
    @staticmethod
    def _state_key(patterns: np.ndarray) -> tuple:
        digest = hashlib.blake2b(
            np.ascontiguousarray(patterns).tobytes(), digest_size=16
        ).digest()
        return (patterns.shape, str(patterns.dtype), digest)

    def _prepare(self, patterns: np.ndarray) -> tuple[NodeValues, np.ndarray]:
        """Content-cached fault-free simulation + unpacked node bits.

        The cache holds up to :attr:`_STATE_SLOTS` recently simulated
        batches, addressed by content digest, so callers mutating a
        batch in place (or passing an equal batch in a new array)
        always get results for the values they passed, and *alternating*
        batches — an ATPG walk's flip batch against full-pool coverage
        checks, a revisited restart baseline — hit without resimulating.
        A near-miss — same shape as some cached slot, few input columns
        changed — is patched incrementally from the **closest** slot
        when the backend supports event-driven replay: only the flipped
        inputs' fanout cones are re-simulated and re-unpacked (the ATPG
        hill-climb's step cost).  The module-background cache is tied
        to the *active* slot; switching the active batch clears it.
        """
        patterns = np.asarray(patterns)
        key = self._state_key(patterns)
        entry = self._state_cache.get(key)
        if entry is not None and np.array_equal(entry[0], patterns):
            self._state_cache.move_to_end(key)
            self._activate(key)
            self._stat("hits")
            return entry[1], entry[2]
        if self.backend.supports_incremental:
            prepared = self._prepare_incremental(key, patterns)
            if prepared is not None:
                return prepared
        values = self.sim.simulate_values(patterns)
        bits = self.sim.unpack_bits(values)
        self._remember(key, [patterns.copy(), values, bits, None])
        self._stat("full")
        return values, bits

    def _stat(self, key: str) -> None:
        """Bump one sim-state counter in both views (local dict +
        process metrics registry)."""
        self.state_stats[key] += 1
        obs.METRICS.inc(f"engine.state.{key}")

    def _activate(self, key: tuple) -> None:
        """Make ``key`` the slot the background cache refers to."""
        if key != self._active_key:
            self._bg_cache.clear()
            self._active_key = key

    def _remember(self, key: tuple, entry: list) -> None:
        self._state_cache[key] = entry
        self._state_cache.move_to_end(key)
        while len(self._state_cache) > self._STATE_SLOTS:
            self._state_cache.popitem(last=False)
            obs.METRICS.inc("engine.state.evictions")
        obs.METRICS.gauge("engine.state.slots", len(self._state_cache))
        self._activate(key)

    def _prepare_incremental(
        self, key: tuple, patterns: np.ndarray
    ) -> tuple[NodeValues, np.ndarray] | None:
        """Patch the new batch from the closest cached slot.

        Returns ``None`` (caller re-simulates from scratch) when no
        same-shaped slot is within the column limit.  The source slot
        stays cached, so its ``bits`` matrix is copied before patching;
        ``NodeValues`` handed out earlier stay untouched because
        :meth:`~repro.faultsim.logic_sim.LogicSimulator.simulate_delta`
        never mutates its baseline.  The lazy leakage matrix is not
        carried over — leakage is state-dependent, so a patched state
        must never reuse it.  Module-background dirty marking applies
        only when patching *from the active slot* (the background rows
        correspond to that batch); patching from any other slot clears
        the background cache instead.
        """
        best: tuple[tuple, list, np.ndarray] | None = None
        for slot_key in reversed(self._state_cache):  # most recent first
            slot = self._state_cache[slot_key]
            if slot[0].shape != patterns.shape:
                continue
            changed_cols = np.flatnonzero((patterns != slot[0]).any(axis=0))
            if changed_cols.size > self._INCREMENTAL_COL_LIMIT:
                continue
            if best is None or changed_cols.size < best[2].size:
                best = (slot_key, slot, changed_cols)
                if changed_cols.size <= 1:
                    break
        if best is None:
            return None
        source_key, source, changed_cols = best
        values, changed_rows = self.sim.simulator.simulate_delta(
            source[1], patterns, return_changed=True, changed_cols=changed_cols
        )
        bits = source[2].copy()
        if changed_rows.size:
            sub = np.ascontiguousarray(values.packed[changed_rows])
            bits[changed_rows] = np.unpackbits(
                sub.view(np.uint8), axis=1, bitorder="little"
            )[:, : values.num_patterns].astype(np.int32)
        if source_key == self._active_key:
            if changed_rows.size:
                changed_mask = np.zeros(bits.shape[0], dtype=bool)
                changed_mask[changed_rows] = True
                for entry in self._bg_cache.values():
                    if changed_mask[entry[1]].any():
                        entry[4].append(changed_rows)
            # The background rows now describe the patched batch.
            self._active_key = key
        self._remember(key, [patterns.copy(), values, bits, None])
        self._stat("patches")
        return values, bits

    def _full_leak(self, values: NodeValues) -> np.ndarray:
        """Lazily computed full leakage matrix for a cached batch."""
        for entry in self._state_cache.values():
            if entry[1] is values:
                if entry[3] is None:
                    entry[3] = self.sim.gate_leakage_na(values)
                return entry[3]
        return self.sim.gate_leakage_na(values)

    def _detect(
        self,
        partition: Partition,
        defects: Sequence[Defect],
        patterns: np.ndarray,
        want_report: bool = False,
    ) -> tuple[np.ndarray, dict[int, float]]:
        values, bits = self._prepare(patterns)
        num_patterns = patterns.shape[0]
        if not defects:
            fault_free = self.sim.module_iddq_from_leak(
                partition, self._full_leak(values)
            )
            thresholds = effective_thresholds_ua(fault_free, self.technology)
            return np.zeros((0, num_patterns), dtype=bool), thresholds

        indptr, flat_modules = self._observing_csr(partition, defects)
        needed = list(dict.fromkeys(flat_modules.tolist()))
        if want_report or len(needed) == partition.num_modules:
            # Full path: every module's background (the coverage report
            # quotes every sensor threshold).
            fault_free = self.sim.module_iddq_from_leak(
                partition, self._full_leak(values)
            )
        else:
            # Restricted path: a small defect list touches few modules —
            # compute leakage for those modules' gates only (the usual
            # case inside the ATPG hill-climb: one defect, 1-2 modules),
            # reusing cached series for modules untouched since the last
            # batch change.
            fault_free = self._module_background(partition, bits, needed)
        thresholds = effective_thresholds_ua(fault_free, self.technology)

        modules = list(fault_free)
        position = {module: i for i, module in enumerate(modules)}
        background = np.stack([fault_free[m] for m in modules])  # (M, patterns)
        threshold_arr = np.asarray([thresholds[m] for m in modules])
        pair_modules = np.asarray(
            [position[m] for m in flat_modules.tolist()], dtype=np.int64
        )
        activation = self._activation_bits(defects, values)  # (D, patterns) uint8
        currents = np.asarray([d.current_ua for d in defects], dtype=np.float64)

        pair_defects = np.repeat(
            np.arange(len(defects), dtype=np.int64), np.diff(indptr)
        )
        # Same float expression as the reference loop: background +
        # activation * current, compared against the module threshold.
        measured = (
            background[pair_modules]
            + activation[pair_defects].astype(np.float64)
            * currents[pair_defects][:, None]
        )
        hits = measured >= threshold_arr[pair_modules][:, None]
        matrix = np.logical_or.reduceat(hits, indptr[:-1], axis=0)
        return matrix, thresholds

    def _module_background(
        self, partition: Partition, bits: np.ndarray, modules
    ) -> dict[int, np.ndarray]:
        """Cached :meth:`IDDQSimulator.module_background_ua`.

        Between ATPG hill-climb steps only a handful of node rows
        change, so most steps reuse every observing module's background
        series outright; a module marked dirty by
        :meth:`_prepare_incremental` refreshes only the leak rows of
        gates whose fanins changed and re-sums — bit-identical to a
        fresh computation (same per-gate floats, same summation order)
        at a fraction of the cost.
        """
        result: dict[int, np.ndarray] = {}
        for module in modules:
            key = (id(partition), partition.version, module)
            entry = self._bg_cache.get(key)
            if entry is not None and entry[0] is partition:
                if entry[4]:
                    self._refresh_background(entry, partition, module, bits)
                result[module] = entry[3]
                continue
            idx = self.sim.module_indices(partition)[module]
            leak = self.sim.leakage_rows(bits, idx)
            series = leak.T.sum(axis=1) * 1e-3  # nA -> uA, as the reference
            dep_entry = self._dep_cache.get(key)
            if dep_entry is not None and dep_entry[0] is partition:
                deps = dep_entry[1]
            else:
                deps = self.sim.module_dependency_rows(partition, module)
                if len(self._dep_cache) >= 256:
                    self._dep_cache.pop(next(iter(self._dep_cache)))
                self._dep_cache[key] = (partition, deps)
            row2pos: dict[int, list[int]] = {}
            fanin_rows = self.sim.fanin_rows
            for i, g in enumerate(idx.tolist()):
                for row in fanin_rows[g]:
                    row2pos.setdefault(row, []).append(i)
            if len(self._bg_cache) >= 64:
                self._bg_cache.pop(next(iter(self._bg_cache)))
            self._bg_cache[key] = [partition, deps, leak, series, [], row2pos]
            result[module] = series
        # Preserve the uncached call's module order (dict order feeds
        # the stacked background matrix downstream).
        return {module: result[module] for module in modules}

    def _refresh_background(
        self, entry: list, partition: Partition, module: int, bits: np.ndarray
    ) -> None:
        """Recompute a dirty module's affected leak rows and re-sum."""
        row2pos = entry[5]
        positions: set[int] = set()
        for rows in entry[4]:
            for row in rows.tolist():
                hit = row2pos.get(row)
                if hit is not None:
                    positions.update(hit)
        entry[4] = []
        if positions:
            idx = self.sim.module_indices(partition)[module]
            affected = np.fromiter(positions, dtype=np.int64, count=len(positions))
            affected.sort()
            entry[2][affected] = self.sim.leakage_rows(bits, idx[affected])
            entry[3] = entry[2].T.sum(axis=1) * 1e-3

    def _observing_csr(
        self, partition: Partition, defects: Sequence[Defect]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Defect -> observing-module-id CSR (cached).

        Every defect observes at least one module (defect validation
        requires an observing gate, and every gate is in a module), so
        all CSR segments are non-empty — ``reduceat`` is safe.
        """
        defects = tuple(defects)
        key = (
            id(partition),
            partition.version,
            tuple(id(d) for d in defects),
        )
        cached = self._obs_cache.get(key)
        # The cached entry holds the partition and defect objects, so
        # their ids cannot be recycled while the entry lives; the
        # identity checks guard against stale ids after eviction
        # elsewhere.  (Keying on defect *objects* rather than defect_id
        # strings keeps two distinct defects sharing an id distinct.)
        if (
            cached is not None
            and cached[0] is partition
            and all(a is b for a, b in zip(cached[1], defects))
        ):
            return cached[2], cached[3]
        indptr = np.zeros(len(defects) + 1, dtype=np.int64)
        flat: list[int] = []
        for d, defect in enumerate(defects):
            flat.extend(self.sim.observing_modules(defect, partition))
            indptr[d + 1] = len(flat)
        result = (indptr, np.asarray(flat, dtype=np.int64))
        if len(self._obs_cache) >= self._OBS_CACHE_SLOTS:
            self._obs_cache.pop(next(iter(self._obs_cache)))
        self._obs_cache[key] = (partition, defects) + result
        return result

    def _activation_bits(
        self, defects: Sequence[Defect], values: NodeValues
    ) -> np.ndarray:
        """Packed-then-unpacked ``(defects, patterns)`` activation matrix.

        The three built-in defect classes compile to fancy indexing over
        the packed simulation words (XOR of two net rows for bridges,
        one net row with optional inversion for oxide shorts and
        stuck-on transistors); unknown :class:`Defect` subclasses fall
        back to their own ``activation`` method.
        """
        packed = values.packed
        row_of = values.row_of
        num_words = packed.shape[1]
        act = np.zeros((len(defects), num_words), dtype=np.uint64)
        rows_a = np.full(len(defects), -1, dtype=np.int64)
        rows_b = np.full(len(defects), -1, dtype=np.int64)
        invert = np.zeros(len(defects), dtype=bool)
        fallback: list[int] = []
        for d, defect in enumerate(defects):
            kind = type(defect)
            try:
                if kind is BridgingFault:
                    rows_a[d] = row_of[defect.net_a]
                    rows_b[d] = row_of[defect.net_b]
                elif kind is GateOxideShort:
                    rows_a[d] = row_of[defect.input_net]
                    invert[d] = not defect.active_value
                elif kind is StuckOnTransistor:
                    rows_a[d] = row_of[defect.gate]
                    invert[d] = not defect.active_output
                else:
                    fallback.append(d)
            except KeyError:
                rows_a[d] = -1
                fallback.append(d)
        known = np.flatnonzero(rows_a >= 0)
        if len(known):
            act[known] = packed[rows_a[known]]
            two = known[rows_b[known] >= 0]
            if len(two):
                act[two] ^= packed[rows_b[two]]
            flip = known[invert[known]]
            if len(flip):
                act[flip] ^= _ONES
        for d in fallback:
            act[d] = defects[d].activation(values)
        bits = np.unpackbits(act.view(np.uint8), axis=1, bitorder="little")
        return bits[:, : values.num_patterns]
