"""IDDQ fault-simulation substrate.

The paper *assumes* an IDDQ test regime: defects raise the quiescent
current, per-module BIC sensors compare against ``IDDQ,th``, and
partitioning exists precisely because one global sensor cannot
discriminate a small defective current on top of a large circuit's
fault-free leakage (§1).  This subpackage builds that regime so the
claim is demonstrated rather than assumed:

* a bit-parallel combinational logic simulator
  (:mod:`~repro.faultsim.logic_sim`);
* IDDQ-observable defect models — bridges, gate-oxide shorts, stuck-on
  transistors (:mod:`~repro.faultsim.faults`);
* per-vector, per-module quiescent current computation
  (:mod:`~repro.faultsim.iddq`);
* coverage evaluation under a partition and threshold — the one-shot
  reference in :mod:`~repro.faultsim.coverage`, the cached vectorised
  :class:`~repro.faultsim.engine.CoverageEngine` for hot paths;
* pattern generation/compaction (:mod:`~repro.faultsim.patterns`) and
  the test-application-time model (:mod:`~repro.faultsim.testtime`).
"""

from repro.faultsim.logic_sim import LogicSimulator, NodeValues
from repro.faultsim.faults import (
    BridgingFault,
    Defect,
    GateOxideShort,
    StuckOnTransistor,
    sample_bridging_faults,
    sample_gate_oxide_shorts,
    sample_stuck_on_transistors,
)
from repro.faultsim.iddq import IDDQSimulator
from repro.faultsim.engine import CoverageEngine
from repro.faultsim.atpg import (
    IDDQTestSet,
    generate_iddq_tests,
    reference_generate_iddq_tests,
)
from repro.faultsim.quality import (
    QualityReport,
    defect_level,
    quality_from_coverage,
    quality_from_defects,
)
from repro.faultsim.stuck_at import (
    ReferenceStuckAtSimulator,
    StuckAtFault,
    StuckAtSimulator,
    enumerate_stuck_at_faults,
)
from repro.faultsim.coverage import CoverageReport, evaluate_coverage
from repro.faultsim.patterns import exhaustive_patterns, random_patterns, compact_patterns
from repro.faultsim.testtime import test_application_time

__all__ = [
    "LogicSimulator",
    "NodeValues",
    "Defect",
    "BridgingFault",
    "GateOxideShort",
    "StuckOnTransistor",
    "sample_bridging_faults",
    "sample_gate_oxide_shorts",
    "sample_stuck_on_transistors",
    "IDDQSimulator",
    "CoverageEngine",
    "IDDQTestSet",
    "generate_iddq_tests",
    "reference_generate_iddq_tests",
    "QualityReport",
    "defect_level",
    "quality_from_coverage",
    "quality_from_defects",
    "StuckAtFault",
    "StuckAtSimulator",
    "ReferenceStuckAtSimulator",
    "enumerate_stuck_at_faults",
    "CoverageReport",
    "evaluate_coverage",
    "random_patterns",
    "exhaustive_patterns",
    "compact_patterns",
    "test_application_time",
]
