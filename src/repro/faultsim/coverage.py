"""IDDQ fault coverage under a partition (paper §1-§2 motivation).

The discriminability mechanism, made operational: a sensor's decision
threshold cannot sit inside the fault-free current band of the logic it
monitors, or good dies fail.  Each module sensor therefore uses the
*effective* threshold::

    th_eff,i = max(IDDQ_th, d · max_v IDDQ_nd,i(v))

— the nominal threshold, pushed up when the module's own background
leakage (times the required safety factor ``d``) encroaches on it.  A
defect is detected when, for at least one vector, at least one observing
module measures ``background + defect current >= th_eff``.

This is exactly why the paper partitions: one global sensor on a large
CUT has a big background, hence a raised threshold, hence misses small
defect currents; per-module sensors keep ``th_eff == IDDQ_th`` (that is
the discriminability constraint Γ) and catch them.

:func:`detection_matrix` / :func:`evaluate_coverage` here are one-shot
*reference* implementations (fresh simulator, per-defect Python loop).
Hot paths — test generation, the experiments — run on the cached,
vectorised :class:`~repro.faultsim.engine.CoverageEngine`, which must
reproduce these functions exactly (asserted by the equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.faultsim.faults import Defect
from repro.faultsim.iddq import IDDQSimulator
from repro.library.default_lib import generic_technology
from repro.library.library import CellLibrary
from repro.library.technology import Technology
from repro.netlist.circuit import Circuit
from repro.partition.partition import Partition

__all__ = [
    "CoverageReport",
    "effective_thresholds_ua",
    "detection_matrix",
    "evaluate_coverage",
]


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of one defect list under one partition and pattern set."""

    num_defects: int
    num_detected: int
    detected_ids: tuple[str, ...]
    undetected_ids: tuple[str, ...]
    num_patterns: int
    num_modules: int
    thresholds_ua: Mapping[int, float]

    @property
    def coverage(self) -> float:
        return self.num_detected / self.num_defects if self.num_defects else 1.0

    @property
    def worst_threshold_ua(self) -> float:
        return max(self.thresholds_ua.values())

    def summary(self) -> str:
        return (
            f"{self.num_detected}/{self.num_defects} defects detected "
            f"({100 * self.coverage:.1f}%) with {self.num_patterns} patterns, "
            f"{self.num_modules} module sensor(s), worst effective threshold "
            f"{self.worst_threshold_ua:.2f} uA"
        )


def effective_thresholds_ua(
    fault_free: Mapping[int, np.ndarray], technology: Technology
) -> dict[int, float]:
    """Per-module effective threshold given fault-free background series."""
    nominal = technology.iddq_threshold_ua
    d = technology.discriminability
    return {
        module: max(nominal, d * float(series.max()))
        for module, series in fault_free.items()
    }


def detection_matrix(
    circuit: Circuit,
    partition: Partition,
    defects: Sequence[Defect],
    patterns: np.ndarray,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> np.ndarray:
    """Boolean ``(defects, patterns)`` detection matrix.

    Entry ``[d, p]`` is True when vector ``p`` makes some observing
    module sensor measure at or above its effective threshold.
    """
    technology = technology or generic_technology()
    sim = IDDQSimulator(circuit, library)
    values = sim.simulate_values(patterns)
    fault_free = sim.module_iddq_ua(partition, values)
    thresholds = effective_thresholds_ua(fault_free, technology)
    out = np.zeros((len(defects), patterns.shape[0]), dtype=bool)
    for d, defect in enumerate(defects):
        activation = sim.defect_activation_bits(defect, values).astype(bool)
        for module in sim.observing_modules(defect, partition):
            measured = fault_free[module] + activation * defect.current_ua
            out[d] |= measured >= thresholds[module]
    return out


def evaluate_coverage(
    circuit: Circuit,
    partition: Partition,
    defects: Sequence[Defect],
    patterns: np.ndarray,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> CoverageReport:
    """Coverage of ``defects`` by ``patterns`` under ``partition``."""
    technology = technology or generic_technology()
    sim = IDDQSimulator(circuit, library)
    values = sim.simulate_values(patterns)
    fault_free = sim.module_iddq_ua(partition, values)
    thresholds = effective_thresholds_ua(fault_free, technology)
    detected = np.zeros(len(defects), dtype=bool)
    for d, defect in enumerate(defects):
        activation = sim.defect_activation_bits(defect, values).astype(bool)
        for module in sim.observing_modules(defect, partition):
            measured = fault_free[module] + activation * defect.current_ua
            if bool((measured >= thresholds[module]).any()):
                detected[d] = True
                break
    detected_ids = tuple(d.defect_id for d, hit in zip(defects, detected) if hit)
    undetected_ids = tuple(d.defect_id for d, hit in zip(defects, detected) if not hit)
    return CoverageReport(
        num_defects=len(defects),
        num_detected=int(detected.sum()),
        detected_ids=detected_ids,
        undetected_ids=undetected_ids,
        num_patterns=patterns.shape[0],
        num_modules=partition.num_modules,
        thresholds_ua=thresholds,
    )
