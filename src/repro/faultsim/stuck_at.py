"""Single-stuck-at logic fault simulation.

The paper's opening sentence: IDDQ testing "complements logic (voltage)
testing in CMOS technologies" — many physical defects (bridges, oxide
shorts, stuck-on transistors) draw quiescent current *without* flipping
any output for most vectors, so logic test misses them, while purely
topological faults are the domain of logic test.  To demonstrate that
complementarity we need the logic-test side: the classic single
stuck-at fault model, simulated bit-parallel.

A stuck-at fault pins one net to 0 or 1; it is detected by a vector iff
some primary output differs from the fault-free response.  Two engines
implement the model:

* :class:`StuckAtSimulator` — the fault-parallel engine.  Faults are
  first *collapsed* into structural equivalence classes (chains through
  single-fanout BUF/NOT/AND/NAND/OR/NOR gates carry a stuck value
  unchanged, so one representative per class is simulated).
  Representatives are then simulated in *batches*: the packed state
  grows a fault axis — ``(rows, batch, words)`` — with each fault's net
  pinned in its own column, so one vectorised sim-group reduction
  advances all faults in the batch at once and the per-step Python
  dispatch amortises across the batch.  Per batch, only the sim-group
  slices inside the union of the members' output cones (precomputed
  bitsets over the fanout CSR) are re-evaluated, and only
  cone-reachable outputs are compared; batches are formed in schedule
  order so neighbouring faults share cones.
  :meth:`StuckAtSimulator.coverage` additionally *drops* faults chunk
  by chunk — once a fault class is detected in an earlier pattern block
  it is never simulated again.
* :class:`ReferenceStuckAtSimulator` — the original serial-fault
  implementation (one full compiled-graph re-simulation per fault),
  kept verbatim as the executable specification.  The equivalence suite
  asserts both produce bit-identical detection matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.backend import SimBackend
from repro.faultsim.logic_sim import LogicSimulator
from repro.errors import FaultSimError
from repro.netlist.circuit import Circuit
from repro.netlist.compiled import GATE_TYPE_CODES, OP_AND, OP_OR
from repro.netlist.gate import GateType

__all__ = [
    "StuckAtFault",
    "StuckAtSimulator",
    "ReferenceStuckAtSimulator",
    "enumerate_stuck_at_faults",
]

_WORD = 64
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class StuckAtFault:
    """Net ``net`` permanently at ``value`` (0 or 1)."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise FaultSimError(f"stuck-at value must be 0/1, got {self.value}")

    @property
    def fault_id(self) -> str:
        return f"sa{self.value}:{self.net}"


def enumerate_stuck_at_faults(circuit: Circuit) -> list[StuckAtFault]:
    """Both polarities on every net (inputs and gate outputs).

    The classic collapsed fault list would be smaller; the uncollapsed
    list keeps the coverage numbers easy to interpret.  (The simulator
    collapses equivalent faults internally — the reported numbers stay
    uncollapsed, only the work shrinks.)
    """
    faults: list[StuckAtFault] = []
    for name in circuit.all_names:
        faults.append(StuckAtFault(name, 0))
        faults.append(StuckAtFault(name, 1))
    return faults


#: One fault-equivalence step.  For a net whose *only* fanout is a gate
#: of the keyed type (and which is not itself a primary output, so the
#: gate is its only observation path), stuck-at ``value`` on the net
#: produces the exact same faulty output function as the mapped stuck-at
#: on the gate's output net: BUF/NOT propagate both polarities, a
#: controlling value on AND/NAND/OR/NOR forces the output.  XOR/XNOR
#: have no controlling value and break the chain.
_COLLAPSE_STEP: dict[tuple[GateType, int], int] = {
    (GateType.BUF, 0): 0,
    (GateType.BUF, 1): 1,
    (GateType.NOT, 0): 1,
    (GateType.NOT, 1): 0,
    (GateType.AND, 0): 0,
    (GateType.NAND, 0): 1,
    (GateType.OR, 1): 1,
    (GateType.NOR, 1): 0,
}


class StuckAtSimulator:
    """Fault-parallel stuck-at engine: collapsed classes, batched
    cone-limited simulation, fault dropping (see module docstring)."""

    #: Faults simulated per batched compiled-graph pass.
    batch_faults = 64

    def __init__(self, circuit: Circuit, backend: str | SimBackend | None = None):
        self.circuit = circuit
        self.simulator = LogicSimulator(circuit, backend)
        self._cg = circuit.compiled
        self.row_of = self.simulator.row_of
        # Output bookkeeping: node row per primary output, in output order.
        self._out_nodes = np.asarray(
            [self.row_of[name] for name in circuit.output_names], dtype=np.int64
        )
        self._fanout_count = np.diff(self._cg.fanout_indptr)
        self._is_output = np.zeros(self._cg.num_nodes, dtype=bool)
        if len(self._out_nodes):
            self._is_output[self._out_nodes] = True
        self._out_closure: np.ndarray | None = None
        # Pooled batched-fault state buffer: one (rows, batch, words)
        # allocation reused across every batch of a detection-matrix or
        # coverage build (allocating ~8 MB per 64-fault batch used to
        # dominate the build).
        self._state_pool: np.ndarray | None = None

    # ------------------------------------------------------------------ public
    def collapse_root(self, fault: StuckAtFault) -> StuckAtFault:
        """Representative of ``fault``'s structural equivalence class.

        Chases single-fanout chains forward; every fault in a class has a
        bit-identical detection row, so only the root is simulated.
        """
        row = self.row_of.get(fault.net)
        if row is None:
            raise FaultSimError(f"unknown net {fault.net!r}")
        row, value = self._chase(row, fault.value)
        return StuckAtFault(self.circuit.all_names[row], value)

    def detection_matrix(
        self,
        faults: Sequence[StuckAtFault],
        patterns: np.ndarray,
        jobs: int | None = None,
    ) -> np.ndarray:
        """Boolean ``(faults, patterns)``: vector p detects fault f.

        Bit-identical to :class:`ReferenceStuckAtSimulator`.  With
        ``jobs`` > 1 the fault list is sharded across the runtime's
        process pool (:func:`repro.runtime.parallel.sharded_detection_matrix`);
        every fault's row is computed independently of its batch-mates,
        so the sharded result is bit-identical at any worker count.
        """
        patterns = self.simulator._check_patterns(patterns)
        if jobs is not None and jobs > 1:
            from repro.runtime.parallel import sharded_detection_matrix

            return sharded_detection_matrix(
                self.circuit,
                faults,
                patterns,
                jobs=jobs,
                backend=self.simulator.backend.name,
            )
        num_patterns = patterns.shape[0]
        with obs.TRACER.span(
            "detection_matrix",
            circuit=self.circuit.name,
            faults=len(faults),
            patterns=num_patterns,
        ):
            out = np.zeros((len(faults), num_patterns), dtype=np.bool_)
            classes = self._collapse_classes(faults)
            if not classes or not len(self._out_nodes):
                # No primary outputs: nothing is observable, every fault
                # escapes (the reference crashed here before the guard).
                return out
            good, valid = self._sim_state(patterns)
            roots = self._schedule_roots(classes)
            for start in range(0, len(roots), self.batch_faults):
                batch = roots[start : start + self.batch_faults]
                diff = self._batch_diff(good, valid, batch)
                bits = np.unpackbits(
                    diff.view(np.uint8), axis=1, bitorder="little"
                )
                for b, key in enumerate(batch):
                    out[classes[key]] = bits[b, :num_patterns].astype(bool)
            return out

    def coverage(
        self,
        faults: Sequence[StuckAtFault],
        patterns: np.ndarray,
        chunk_patterns: int = 64,
    ) -> float:
        """Fraction of faults detected by the pattern set.

        Identical to ``detection_matrix(...).any(axis=1).mean()`` but
        processes patterns in chunks and drops detected fault classes, so
        most of the fault list is simulated against the first chunk only.
        """
        if not faults:
            return 1.0
        patterns = self.simulator._check_patterns(patterns)
        classes = self._collapse_classes(faults)
        detected = np.zeros(len(faults), dtype=bool)
        if not len(self._out_nodes):
            return 0.0
        remaining = self._schedule_roots(classes)
        for start in range(0, patterns.shape[0], chunk_patterns):
            if not remaining:
                break
            good, valid = self._sim_state(patterns[start : start + chunk_patterns])
            survivors: list[tuple[int, int]] = []
            for bstart in range(0, len(remaining), self.batch_faults):
                batch = remaining[bstart : bstart + self.batch_faults]
                diff = self._batch_diff(good, valid, batch)
                hit = diff.any(axis=1)
                for b, key in enumerate(batch):
                    if hit[b]:
                        detected[classes[key]] = True
                    else:
                        survivors.append(key)
            remaining = survivors
        return float(detected.mean())

    # ---------------------------------------------------------------- internal
    def _chase(self, row: int, value: int) -> tuple[int, int]:
        cg = self._cg
        while not self._is_output[row] and self._fanout_count[row] == 1:
            sink = int(cg.fanout_indices[cg.fanout_indptr[row]])
            step = _COLLAPSE_STEP.get((GATE_TYPE_CODES[cg.type_code[sink]], value))
            if step is None:
                break
            row, value = sink, step
        return row, value

    def _collapse_classes(
        self, faults: Sequence[StuckAtFault]
    ) -> dict[tuple[int, int], list[int]]:
        """Map class root ``(node row, value)`` -> member fault indices."""
        classes: dict[tuple[int, int], list[int]] = {}
        for i, fault in enumerate(faults):
            row = self.row_of.get(fault.net)
            if row is None:
                raise FaultSimError(f"unknown net {fault.net!r}")
            classes.setdefault(self._chase(row, fault.value), []).append(i)
        return classes

    def _schedule_roots(
        self, classes: dict[tuple[int, int], list[int]]
    ) -> list[tuple[int, int]]:
        """Class roots ordered by simulation slot, so faults sharing a
        batch sit close in the schedule and their cone union stays tight."""
        slot = self._cg.slot_of_node
        return sorted(classes, key=lambda key: (int(slot[key[0]]), key[0], key[1]))

    def _build_out_closure(self) -> None:
        """Per-net reachable-primary-output bitsets, from one
        reverse-topological sweep over the fanout CSR.

        ``out_closure[n]`` ORs the reachable primary-output positions
        (including ``n`` itself when it is an output).  The companion
        reachable-*slot* bitsets live on the compiled graph
        (:meth:`CompiledGraph.slot_closure`) where the incremental
        simulation backend shares them.
        """
        cg = self._cg
        out_words = (len(self._out_nodes) + _WORD - 1) // _WORD
        out_closure = np.zeros((cg.num_nodes, out_words), dtype=np.uint64)
        outs = np.arange(len(self._out_nodes), dtype=np.uint64)
        out_closure[self._out_nodes, (outs // _WORD).astype(np.int64)] |= (
            np.uint64(1) << (outs % _WORD)
        )
        indptr, indices = cg.fanout_indptr, cg.fanout_indices
        for node in cg.topo[::-1]:
            row = indices[indptr[node] : indptr[node + 1]]
            if len(row):
                out_closure[node] |= np.bitwise_or.reduce(out_closure[row], axis=0)
        self._out_closure = out_closure

    def _sim_state(self, patterns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(fault-free packed node rows, valid-bit word mask)."""
        good = self.simulator.simulate(patterns).packed
        valid = np.full(good.shape[1], _ONES, dtype=np.uint64)
        tail = patterns.shape[0] % _WORD
        if tail:
            valid[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
        return good, valid

    def _batch_diff(
        self,
        good: np.ndarray,
        valid: np.ndarray,
        batch: Sequence[tuple[int, int]],
    ) -> np.ndarray:
        """Packed detection words, one row per fault in ``batch``.

        One fault-parallel pass: state is ``(rows, batch, words)``, each
        fault pinned in its own column; only sim-group slices inside the
        batch's cone union are re-evaluated, and after every group the
        pinned rows are re-asserted (a pinned net may sit inside another
        batch member's cone and must still be re-computed *there*).
        """
        if self._out_closure is None:
            self._build_out_closure()
        cg = self._cg
        num_words = good.shape[1]
        size = len(batch)
        rows = np.asarray([key[0] for key in batch], dtype=np.int64)
        values = np.asarray([key[1] for key in batch], dtype=np.uint64)
        cols = np.arange(size)

        pool = self._state_pool
        if (
            pool is None
            or pool.shape[1] < size
            or pool.shape[2] != num_words
        ):
            pool = np.empty(
                (cg.num_sim_rows, max(size, self.batch_faults), num_words),
                dtype=np.uint64,
            )
            self._state_pool = pool
        state = pool[:, :size, :]
        state[: cg.num_nodes] = good[:, None, :]
        state[cg.zero_row] = np.uint64(0)
        state[cg.ones_row] = _ONES
        pin_words = np.where(values[:, None].astype(bool), _ONES, np.uint64(0))
        state[rows, cols] = pin_words

        union = np.bitwise_or.reduce(cg.slot_closure()[rows], axis=0)
        slots = np.flatnonzero(np.unpackbits(union.view(np.uint8), bitorder="little"))
        if len(slots):
            offsets = cg.sim_group_offsets
            group_ids = np.searchsorted(offsets, slots, side="right") - 1
            starts = np.flatnonzero(np.r_[True, group_ids[1:] != group_ids[:-1]])
            ends = np.r_[starts[1:], len(slots)]
            for s, e in zip(starts, ends):
                group = cg.sim_groups[group_ids[s]]
                pos = slots[s:e] - offsets[group_ids[s]]
                gathered = state[group.src[pos]]  # (k, width, batch, words)
                if group.op == OP_AND:
                    acc = np.bitwise_and.reduce(gathered, axis=1)
                elif group.op == OP_OR:
                    acc = np.bitwise_or.reduce(gathered, axis=1)
                else:
                    acc = np.bitwise_xor.reduce(gathered, axis=1)
                state[group.dst[pos]] = acc ^ group.invert[pos][:, :, None]
                state[rows, cols] = pin_words  # re-assert pinned nets

        out_union = np.bitwise_or.reduce(self._out_closure[rows], axis=0)
        out_positions = np.flatnonzero(
            np.unpackbits(out_union.view(np.uint8), bitorder="little")
        )
        if not len(out_positions):
            return np.zeros((size, num_words), dtype=np.uint64)
        out_rows = self._out_nodes[out_positions]
        xor = state[out_rows] ^ good[out_rows][:, None, :]
        return np.bitwise_or.reduce(xor, axis=0) & valid


class ReferenceStuckAtSimulator:
    """Serial-fault, bit-parallel stuck-at simulator — the executable
    specification.

    One full compiled-graph re-simulation per fault with the fault net
    pinned; :class:`StuckAtSimulator` must reproduce its detection
    matrices bit for bit.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.simulator = LogicSimulator(circuit)

    def detection_matrix(
        self, faults: Sequence[StuckAtFault], patterns: np.ndarray
    ) -> np.ndarray:
        """Boolean ``(faults, patterns)``: vector p detects fault f."""
        good = self.simulator.simulate(patterns)
        good_outputs = self._output_words(good)
        num_words = good.packed.shape[1]
        out = np.zeros((len(faults), patterns.shape[0]), dtype=np.bool_)
        for i, fault in enumerate(faults):
            faulty = self._simulate_with_fault(fault, patterns)
            diff = np.zeros(num_words, dtype=np.uint64)
            for good_row, bad_row in zip(good_outputs, faulty):
                diff |= good_row ^ bad_row
            bits = np.unpackbits(diff.view(np.uint8), bitorder="little")
            out[i] = bits[: patterns.shape[0]].astype(bool)
        return out

    def coverage(
        self, faults: Sequence[StuckAtFault], patterns: np.ndarray
    ) -> float:
        """Fraction of faults detected by the pattern set."""
        if not faults:
            return 1.0
        matrix = self.detection_matrix(faults, patterns)
        return float(matrix.any(axis=1).mean())

    # ------------------------------------------------------------------ internal
    def _output_words(self, values) -> list[np.ndarray]:
        return [
            values.packed[values.row_of[name]].copy()
            for name in self.circuit.output_names
        ]

    def _simulate_with_fault(
        self, fault: StuckAtFault, patterns: np.ndarray
    ) -> list[np.ndarray]:
        """Re-simulate with ``fault.net`` pinned; returns output words."""
        if fault.net not in self.simulator.row_of:
            raise FaultSimError(f"unknown net {fault.net!r}")
        values = self.simulator.simulate(patterns, pinned={fault.net: fault.value})
        return [
            values.packed[values.row_of[name]].copy()
            for name in self.circuit.output_names
        ]
