"""Single-stuck-at logic fault simulation.

The paper's opening sentence: IDDQ testing "complements logic (voltage)
testing in CMOS technologies" — many physical defects (bridges, oxide
shorts, stuck-on transistors) draw quiescent current *without* flipping
any output for most vectors, so logic test misses them, while purely
topological faults are the domain of logic test.  To demonstrate that
complementarity we need the logic-test side: the classic single
stuck-at fault model, simulated bit-parallel.

A stuck-at fault pins one net to 0 or 1; it is detected by a vector iff
some primary output differs from the fault-free response.  Simulation is
serial-fault (one faulty circuit re-simulated per fault) over packed
64-pattern words — each faulty simulation is one batched compiled-graph
run with the fault net pinned, which is plenty fast for the benchmark
sizes here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faultsim.logic_sim import LogicSimulator
from repro.errors import FaultSimError
from repro.netlist.circuit import Circuit

__all__ = ["StuckAtFault", "StuckAtSimulator", "enumerate_stuck_at_faults"]


@dataclass(frozen=True)
class StuckAtFault:
    """Net ``net`` permanently at ``value`` (0 or 1)."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise FaultSimError(f"stuck-at value must be 0/1, got {self.value}")

    @property
    def fault_id(self) -> str:
        return f"sa{self.value}:{self.net}"


def enumerate_stuck_at_faults(circuit: Circuit) -> list[StuckAtFault]:
    """Both polarities on every net (inputs and gate outputs).

    The classic collapsed fault list would be smaller; the uncollapsed
    list keeps the coverage numbers easy to interpret.
    """
    faults: list[StuckAtFault] = []
    for name in circuit.all_names:
        faults.append(StuckAtFault(name, 0))
        faults.append(StuckAtFault(name, 1))
    return faults


class StuckAtSimulator:
    """Serial-fault, bit-parallel stuck-at simulator."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.simulator = LogicSimulator(circuit)

    def detection_matrix(
        self, faults: Sequence[StuckAtFault], patterns: np.ndarray
    ) -> np.ndarray:
        """Boolean ``(faults, patterns)``: vector p detects fault f."""
        good = self.simulator.simulate(patterns)
        good_outputs = self._output_words(good)
        out = np.zeros((len(faults), patterns.shape[0]), dtype=np.bool_)
        for i, fault in enumerate(faults):
            faulty = self._simulate_with_fault(fault, patterns)
            diff = np.zeros_like(good_outputs[0])
            for good_row, bad_row in zip(good_outputs, faulty):
                diff |= good_row ^ bad_row
            bits = np.unpackbits(diff.view(np.uint8), bitorder="little")
            out[i] = bits[: patterns.shape[0]].astype(bool)
        return out

    def coverage(
        self, faults: Sequence[StuckAtFault], patterns: np.ndarray
    ) -> float:
        """Fraction of faults detected by the pattern set."""
        if not faults:
            return 1.0
        matrix = self.detection_matrix(faults, patterns)
        return float(matrix.any(axis=1).mean())

    # ------------------------------------------------------------------ internal
    def _output_words(self, values) -> list[np.ndarray]:
        return [
            values.packed[values.row_of[name]].copy()
            for name in self.circuit.output_names
        ]

    def _simulate_with_fault(
        self, fault: StuckAtFault, patterns: np.ndarray
    ) -> list[np.ndarray]:
        """Re-simulate with ``fault.net`` pinned; returns output words."""
        if fault.net not in self.simulator.row_of:
            raise FaultSimError(f"unknown net {fault.net!r}")
        values = self.simulator.simulate(patterns, pinned={fault.net: fault.value})
        return [
            values.packed[values.row_of[name]].copy()
            for name in self.circuit.output_names
        ]
