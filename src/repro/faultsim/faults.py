"""IDDQ-observable defect models.

The defect classes the IDDQ literature the paper builds on established
as current-testable (references [1]-[6] and [14] of the paper):

* **bridging faults** — a resistive short between two signal nets;
  quiescent current flows whenever the nets carry opposite values;
* **gate-oxide shorts** — a pinhole from a transistor gate to the
  channel; conducts when the affected input is driven to the level that
  biases the short;
* **stuck-on transistors** — a transistor that conducts regardless of
  its gate voltage; a supply-to-ground path appears for the output state
  the healthy transistor would have blocked.

Each defect exposes its *activation* as a packed bit vector over
simulated patterns and the set of gates whose module sensor observes the
defect current.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import FaultSimError
from repro.faultsim.logic_sim import NodeValues
from repro.netlist.circuit import Circuit

__all__ = [
    "Defect",
    "BridgingFault",
    "GateOxideShort",
    "StuckOnTransistor",
    "sample_bridging_faults",
    "sample_gate_oxide_shorts",
    "sample_stuck_on_transistors",
]


@dataclass(frozen=True)
class Defect:
    """Base defect: a unique id, a defect current and observing gates.

    ``observing_gates`` are logic-gate names whose virtual rail carries
    the defect current — the modules containing them see the elevated
    IDDQ.  (A bridge between two modules is observable from either
    sensor; a bridge to a primary input is observable only from the
    gate-side module.)
    """

    defect_id: str
    current_ua: float
    observing_gates: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.current_ua <= 0:
            raise FaultSimError(f"{self.defect_id}: defect current must be > 0")
        if not self.observing_gates:
            raise FaultSimError(f"{self.defect_id}: no observing gates")

    def activation(self, values: NodeValues) -> np.ndarray:
        """Packed per-pattern activation bits (uint64 words)."""
        raise NotImplementedError


@dataclass(frozen=True)
class BridgingFault(Defect):
    """Short between nets ``net_a`` and ``net_b``; active on opposite values."""

    net_a: str = ""
    net_b: str = ""

    def activation(self, values: NodeValues) -> np.ndarray:
        a = values.packed[values.row_of[self.net_a]]
        b = values.packed[values.row_of[self.net_b]]
        return a ^ b


@dataclass(frozen=True)
class GateOxideShort(Defect):
    """Oxide pinhole at one input of ``gate``; conducts when that input
    carries ``active_value``."""

    gate: str = ""
    input_net: str = ""
    active_value: int = 1

    def activation(self, values: NodeValues) -> np.ndarray:
        bits = values.packed[values.row_of[self.input_net]]
        if self.active_value:
            return bits.copy()
        return ~bits


@dataclass(frozen=True)
class StuckOnTransistor(Defect):
    """A permanently conducting transistor inside ``gate``.

    A supply path exists when the healthy network would have blocked it:
    for a stuck-on pull-up device that is whenever the output is 0, for
    a stuck-on pull-down whenever the output is 1 — ``active_output``
    selects which.
    """

    gate: str = ""
    active_output: int = 1

    def activation(self, values: NodeValues) -> np.ndarray:
        bits = values.packed[values.row_of[self.gate]]
        if self.active_output:
            return bits.copy()
        return ~bits


def _default_rng(seed) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def sample_bridging_faults(
    circuit: Circuit,
    count: int,
    seed=0,
    current_range_ua: tuple[float, float] = (5.0, 200.0),
    local_bias: int = 6,
) -> list[BridgingFault]:
    """Sample ``count`` distinct bridging faults.

    Real bridges occur between physically adjacent wires; as a proxy,
    with high probability the second net is drawn from nets close to the
    first in the undirected circuit graph (within ``local_bias`` BFS
    steps), else uniformly.
    """
    rng = _default_rng(seed)
    nodes = list(circuit.all_names)
    gate_set = set(circuit.gate_names)
    faults: list[BridgingFault] = []
    seen: set[frozenset[str]] = set()
    adjacency = circuit.undirected_adjacency
    attempts = 0
    while len(faults) < count and attempts < count * 200:
        attempts += 1
        net_a = rng.choice(nodes)
        if rng.random() < 0.8:
            net_b = _nearby_net(adjacency, net_a, local_bias, rng)
        else:
            net_b = rng.choice(nodes)
        if net_b is None or net_b == net_a:
            continue
        key = frozenset((net_a, net_b))
        if key in seen:
            continue
        observers = tuple(n for n in (net_a, net_b) if n in gate_set)
        if not observers:
            continue  # a PI-to-PI bridge is invisible to any module sensor
        seen.add(key)
        current = rng.uniform(*current_range_ua)
        faults.append(
            BridgingFault(
                defect_id=f"bridge:{net_a}~{net_b}",
                current_ua=current,
                observing_gates=observers,
                net_a=net_a,
                net_b=net_b,
            )
        )
    if len(faults) < count:
        raise FaultSimError(
            f"could only sample {len(faults)} of {count} bridging faults"
        )
    return faults


def _nearby_net(adjacency, start: str, radius: int, rng: random.Random) -> str | None:
    frontier = [start]
    seen = {start}
    pool: list[str] = []
    for _ in range(radius):
        nxt: list[str] = []
        for node in frontier:
            for nbr in adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    nxt.append(nbr)
                    pool.append(nbr)
        frontier = nxt
        if not frontier:
            break
    return rng.choice(pool) if pool else None


def sample_gate_oxide_shorts(
    circuit: Circuit,
    count: int,
    seed=0,
    current_range_ua: tuple[float, float] = (2.0, 100.0),
) -> list[GateOxideShort]:
    """Sample oxide shorts at random gate inputs."""
    rng = _default_rng(seed)
    gates = list(circuit.gate_names)
    faults: list[GateOxideShort] = []
    seen: set[tuple[str, str, int]] = set()
    attempts = 0
    while len(faults) < count and attempts < count * 200:
        attempts += 1
        gate_name = rng.choice(gates)
        gate = circuit.gate(gate_name)
        input_net = rng.choice(gate.fanins)
        active = rng.randint(0, 1)
        key = (gate_name, input_net, active)
        if key in seen:
            continue
        seen.add(key)
        faults.append(
            GateOxideShort(
                defect_id=f"gos:{gate_name}/{input_net}={active}",
                current_ua=rng.uniform(*current_range_ua),
                observing_gates=(gate_name,),
                gate=gate_name,
                input_net=input_net,
                active_value=active,
            )
        )
    if len(faults) < count:
        raise FaultSimError(f"could only sample {len(faults)} of {count} oxide shorts")
    return faults


def sample_stuck_on_transistors(
    circuit: Circuit,
    count: int,
    seed=0,
    current_range_ua: tuple[float, float] = (10.0, 400.0),
) -> list[StuckOnTransistor]:
    """Sample stuck-on transistor defects at random gates."""
    rng = _default_rng(seed)
    gates = list(circuit.gate_names)
    faults: list[StuckOnTransistor] = []
    seen: set[tuple[str, int]] = set()
    attempts = 0
    while len(faults) < count and attempts < count * 200:
        attempts += 1
        gate_name = rng.choice(gates)
        active = rng.randint(0, 1)
        key = (gate_name, active)
        if key in seen:
            continue
        seen.add(key)
        faults.append(
            StuckOnTransistor(
                defect_id=f"son:{gate_name}@{active}",
                current_ua=rng.uniform(*current_range_ua),
                observing_gates=(gate_name,),
                gate=gate_name,
                active_output=active,
            )
        )
    if len(faults) < count:
        raise FaultSimError(f"could only sample {len(faults)} of {count} stuck-on faults")
    return faults
