"""Test quality: defect level from coverage and yield.

The IDDQ literature the paper builds on (its refs [4], [5]: "How Many
Fault Coverages Do We Need?") connects fault coverage to shipped-product
quality through the Williams–Brown model::

    DL = 1 - Y^(1 - FC)

where ``Y`` is the process yield and ``FC`` the fault coverage; ``DL``
is the fraction of shipped parts that are defective.  This module makes
the repository's coverage numbers interpretable in those terms — e.g.
the motivation experiment's coverage gain from partitioning translates
into a defect-level (DPM) reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import FaultSimError
from repro.faultsim.coverage import CoverageReport
from repro.faultsim.engine import CoverageEngine
from repro.faultsim.faults import Defect
from repro.partition.partition import Partition

__all__ = [
    "QualityReport",
    "defect_level",
    "quality_from_coverage",
    "quality_from_defects",
]


def defect_level(yield_fraction: float, fault_coverage: float) -> float:
    """Williams–Brown defect level ``1 - Y^(1-FC)``.

    Args:
        yield_fraction: process yield in (0, 1].
        fault_coverage: fault coverage in [0, 1].
    """
    if not 0.0 < yield_fraction <= 1.0:
        raise FaultSimError(f"yield must lie in (0, 1], got {yield_fraction}")
    if not 0.0 <= fault_coverage <= 1.0:
        raise FaultSimError(f"coverage must lie in [0, 1], got {fault_coverage}")
    return 1.0 - yield_fraction ** (1.0 - fault_coverage)


@dataclass(frozen=True)
class QualityReport:
    """Defect level implied by a coverage result at a given yield."""

    coverage: float
    yield_fraction: float
    defect_level: float

    @property
    def defects_per_million(self) -> float:
        return self.defect_level * 1e6

    def summary(self) -> str:
        return (
            f"coverage {100 * self.coverage:.1f}% at yield "
            f"{100 * self.yield_fraction:.0f}% -> defect level "
            f"{self.defects_per_million:.0f} DPM"
        )


def quality_from_coverage(
    report: CoverageReport, yield_fraction: float = 0.9
) -> QualityReport:
    """Quality implied by a :class:`CoverageReport`."""
    dl = defect_level(yield_fraction, report.coverage)
    return QualityReport(
        coverage=report.coverage,
        yield_fraction=yield_fraction,
        defect_level=dl,
    )


def quality_from_defects(
    engine: CoverageEngine,
    partition: Partition,
    defects: Sequence[Defect],
    patterns: np.ndarray,
    yield_fraction: float = 0.9,
) -> QualityReport:
    """Defect level of a (partition, defect list, pattern set) triple.

    Runs the coverage evaluation on a persistent
    :class:`~repro.faultsim.engine.CoverageEngine`, so sweeping yields
    or partitions against one engine re-simulates nothing.
    """
    report = engine.evaluate_coverage(partition, defects, patterns)
    return quality_from_coverage(report, yield_fraction)
