"""IDDQ test generation: random phase + targeted activation search.

The paper assumes "a precomputed test vector set" (§3.4).  This module
produces one: defects from :mod:`repro.faultsim.faults` are targeted
with

1. a **random phase** — a batch of uniform vectors, evaluated with the
   bit-parallel detection matrix (random vectors activate most bridges:
   any vector putting opposite values on the two nets works);
2. a **targeted phase** — for each still-undetected defect, a
   hill-climbing search over single-input flips toward a vector that
   activates the defect *and* drives the observing module's measured
   current over its effective threshold;
3. a **compaction phase** — greedy set cover keeps a minimal subset
   preserving coverage.

IDDQ test generation is fundamentally easier than logic ATPG: a defect
needs only to be *activated* (no propagation to an output), which is why
small vector sets reach high coverage — the property the paper's test
application-time argument (§3.4: per-vector cost dominates) builds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import FaultSimError
from repro.faultsim.coverage import detection_matrix
from repro.faultsim.faults import Defect
from repro.faultsim.patterns import compact_patterns, random_patterns
from repro.library.library import CellLibrary
from repro.library.technology import Technology
from repro.netlist.circuit import Circuit
from repro.partition.partition import Partition

__all__ = ["IDDQTestSet", "generate_iddq_tests"]


@dataclass(frozen=True)
class IDDQTestSet:
    """A generated IDDQ test set and its bookkeeping.

    Attributes:
        patterns: ``(vectors, inputs)`` 0/1 matrix, compacted.
        detected_ids / undetected_ids: defect coverage split.
        random_detected: how many defects the random phase caught.
        targeted_detected: how many more the targeted phase added.
    """

    patterns: np.ndarray
    detected_ids: tuple[str, ...]
    undetected_ids: tuple[str, ...]
    random_detected: int
    targeted_detected: int

    @property
    def num_vectors(self) -> int:
        return int(self.patterns.shape[0])

    @property
    def coverage(self) -> float:
        total = len(self.detected_ids) + len(self.undetected_ids)
        return len(self.detected_ids) / total if total else 1.0

    def summary(self) -> str:
        return (
            f"{self.num_vectors} vectors cover {len(self.detected_ids)} of "
            f"{len(self.detected_ids) + len(self.undetected_ids)} defects "
            f"({100 * self.coverage:.1f}%; random phase {self.random_detected}, "
            f"targeted phase +{self.targeted_detected})"
        )


def generate_iddq_tests(
    circuit: Circuit,
    partition: Partition,
    defects: Sequence[Defect],
    library: CellLibrary | None = None,
    technology: Technology | None = None,
    seed: int = 0,
    random_vectors: int = 128,
    restarts: int = 4,
    flip_budget: int = 24,
    compact: bool = True,
) -> IDDQTestSet:
    """Generate and compact an IDDQ test set for ``defects``.

    Args:
        random_vectors: size of the random phase batch.
        restarts: random restarts per undetected defect in the targeted
            phase.
        flip_budget: maximum greedy single-bit flips per restart.
        compact: greedily minimise the final vector set.
    """
    if not defects:
        raise FaultSimError("no defects to target")
    num_inputs = len(circuit.input_names)
    rng = random.Random(seed)

    pool = random_patterns(num_inputs, random_vectors, seed=seed)
    matrix = detection_matrix(circuit, partition, defects, pool, library, technology)
    detected = matrix.any(axis=1)
    random_count = int(detected.sum())

    # Targeted phase: hill-climb per missed defect.
    extra_vectors: list[np.ndarray] = []
    targeted_hits: set[int] = set()
    for d, defect in enumerate(defects):
        if detected[d]:
            continue
        vector = _search_activating_vector(
            circuit,
            partition,
            defect,
            library,
            technology,
            rng,
            num_inputs,
            restarts,
            flip_budget,
        )
        if vector is not None:
            extra_vectors.append(vector)
            targeted_hits.add(d)

    if extra_vectors:
        pool = np.vstack([pool, np.stack(extra_vectors)])
        matrix = detection_matrix(
            circuit, partition, defects, pool, library, technology
        )
        detected = matrix.any(axis=1)

    if compact:
        keep = compact_patterns(matrix)
        if keep.size:
            pool = pool[keep]
            matrix = matrix[:, keep]
        else:
            pool = pool[:1]
            matrix = matrix[:, :1]

    detected = matrix.any(axis=1)
    detected_ids = tuple(d.defect_id for d, hit in zip(defects, detected) if hit)
    undetected_ids = tuple(d.defect_id for d, hit in zip(defects, detected) if not hit)
    return IDDQTestSet(
        patterns=pool,
        detected_ids=detected_ids,
        undetected_ids=undetected_ids,
        random_detected=random_count,
        targeted_detected=len(targeted_hits),
    )


def _search_activating_vector(
    circuit: Circuit,
    partition: Partition,
    defect: Defect,
    library,
    technology,
    rng: random.Random,
    num_inputs: int,
    restarts: int,
    flip_budget: int,
) -> np.ndarray | None:
    """Hill-climb toward a vector that *detects* ``defect``.

    Each step evaluates the whole single-flip neighbourhood in one
    bit-parallel batch; any detecting neighbour wins immediately,
    otherwise a random flip keeps the walk moving (the landscape is flat
    away from activation, so greedy descent alone would stall).
    """
    for _ in range(restarts):
        vector = np.asarray(
            [rng.randint(0, 1) for _ in range(num_inputs)], dtype=np.uint8
        )
        for _ in range(flip_budget):
            batch = np.tile(vector, (num_inputs + 1, 1))
            for bit in range(num_inputs):
                batch[bit + 1, bit] ^= 1
            hits = detection_matrix(
                circuit, partition, [defect], batch, library, technology
            )[0]
            if hits[0]:
                return vector
            winners = np.flatnonzero(hits[1:])
            if winners.size:
                flipped = int(winners[0])
                vector = batch[flipped + 1]
                return vector
            vector = vector.copy()
            vector[rng.randrange(num_inputs)] ^= 1
    return None
