"""IDDQ test generation: random phase + targeted activation search.

The paper assumes "a precomputed test vector set" (§3.4).  This module
produces one: defects from :mod:`repro.faultsim.faults` are targeted
with

1. a **random phase** — a batch of uniform vectors, evaluated with the
   bit-parallel detection matrix (random vectors activate most bridges:
   any vector putting opposite values on the two nets works);
2. a **targeted phase** — for each still-undetected defect, a
   hill-climbing search over single-input flips toward a vector that
   activates the defect *and* drives the observing module's measured
   current over its effective threshold;
3. a **compaction phase** — greedy set cover keeps a minimal subset
   preserving coverage.

The search runs on a persistent
:class:`~repro.faultsim.engine.CoverageEngine`: one engine per
generation call, so each hill-climb step costs one simulation of the
flip-neighbourhood batch against the cached leak tables and module
grouping instead of a full simulator rebuild.  With an incremental
simulation backend (the default — see :mod:`repro.backend`) the step
shrinks further: consecutive :func:`_search_activating_vector` batches
differ in exactly one input column, so the engine re-simulates only
that input's fanout cone instead of the whole circuit.
:func:`reference_generate_iddq_tests` drives the identical search
through the one-shot reference ``detection_matrix`` — the equivalence
suite asserts both return the same test set, bit for bit.

IDDQ test generation is fundamentally easier than logic ATPG: a defect
needs only to be *activated* (no propagation to an output), which is why
small vector sets reach high coverage — the property the paper's test
application-time argument (§3.4: per-vector cost dominates) builds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.backend import SimBackend
from repro.errors import FaultSimError
from repro.faultsim.coverage import detection_matrix
from repro.faultsim.engine import CoverageEngine
from repro.faultsim.faults import Defect
from repro.faultsim.patterns import compact_patterns, random_patterns
from repro.library.library import CellLibrary
from repro.library.technology import Technology
from repro.netlist.circuit import Circuit
from repro.partition.partition import Partition

__all__ = ["IDDQTestSet", "generate_iddq_tests", "reference_generate_iddq_tests"]

#: ``detect(defects, patterns) -> (defects, patterns)`` boolean matrix.
Detector = Callable[[Sequence[Defect], np.ndarray], np.ndarray]


@dataclass(frozen=True)
class IDDQTestSet:
    """A generated IDDQ test set and its bookkeeping.

    Attributes:
        patterns: ``(vectors, inputs)`` 0/1 matrix, compacted.
        detected_ids / undetected_ids: defect coverage split.
        random_detected: how many defects the random phase caught.
        targeted_detected: how many more the targeted phase added.
    """

    patterns: np.ndarray
    detected_ids: tuple[str, ...]
    undetected_ids: tuple[str, ...]
    random_detected: int
    targeted_detected: int

    @property
    def num_vectors(self) -> int:
        return int(self.patterns.shape[0])

    @property
    def coverage(self) -> float:
        total = len(self.detected_ids) + len(self.undetected_ids)
        return len(self.detected_ids) / total if total else 1.0

    def summary(self) -> str:
        return (
            f"{self.num_vectors} vectors cover {len(self.detected_ids)} of "
            f"{len(self.detected_ids) + len(self.undetected_ids)} defects "
            f"({100 * self.coverage:.1f}%; random phase {self.random_detected}, "
            f"targeted phase +{self.targeted_detected})"
        )


def generate_iddq_tests(
    circuit: Circuit,
    partition: Partition,
    defects: Sequence[Defect],
    library: CellLibrary | None = None,
    technology: Technology | None = None,
    seed: int = 0,
    random_vectors: int = 128,
    restarts: int = 4,
    flip_budget: int = 24,
    compact: bool = True,
    engine: CoverageEngine | None = None,
    backend: str | SimBackend | None = None,
    defect_parallel: bool = False,
    jobs: int | None = None,
) -> IDDQTestSet:
    """Generate and compact an IDDQ test set for ``defects``.

    Args:
        random_vectors: size of the random phase batch.
        restarts: random restarts per undetected defect in the targeted
            phase.
        flip_budget: maximum greedy single-bit flips per restart.
        compact: greedily minimise the final vector set.
        engine: reuse an existing :class:`CoverageEngine` (one is built
            when omitted; mutually exclusive with ``library`` /
            ``technology`` / ``backend``, which a passed engine already
            carries).
        backend: simulation-backend selection for the built engine (a
            registered name or ``None``/``"auto"`` for the default).
        defect_parallel: opt into the defect-parallel targeted phase —
            one independent seeded RNG stream per defect (stream id
            ``f"{seed}:{defect_index}"``), sharded across the runtime's
            process pool.  Deterministic for a fixed seed at any worker
            count, but a *different* walk than the serial reference's
            single shared stream, so results differ from (and coverage
            is pinned to be no worse than) the default mode.
        jobs: worker count for the defect-parallel phase (``None``
            defers to ``REPRO_JOBS``; only meaningful with
            ``defect_parallel=True``).
    """
    if engine is not None and (
        library is not None or technology is not None or backend is not None
    ):
        raise FaultSimError(
            "pass either an engine or a library/technology/backend, not "
            "both — the engine already carries its own characterisation"
        )
    search_all = None
    if defect_parallel:
        worker_library = engine.sim.library if engine is not None else library
        worker_technology = engine.technology if engine is not None else technology
        worker_backend = engine.backend.name if engine is not None else (
            backend if isinstance(backend, str) else
            backend.name if backend is not None else None
        )

        def search_all(undetected_indices):
            from repro.runtime.parallel import defect_parallel_targeted

            return defect_parallel_targeted(
                circuit,
                partition,
                defects,
                undetected_indices,
                seed=seed,
                restarts=restarts,
                flip_budget=flip_budget,
                library=worker_library,
                technology=worker_technology,
                backend_name=worker_backend,
                jobs=jobs,
            )

    engine = engine or CoverageEngine(circuit, library, technology, backend=backend)
    return _generate(
        lambda ds, ps: engine.detection_matrix(partition, ds, ps),
        circuit,
        defects,
        seed,
        random_vectors,
        restarts,
        flip_budget,
        compact,
        search_all=search_all,
    )


def reference_generate_iddq_tests(
    circuit: Circuit,
    partition: Partition,
    defects: Sequence[Defect],
    library: CellLibrary | None = None,
    technology: Technology | None = None,
    seed: int = 0,
    random_vectors: int = 128,
    restarts: int = 4,
    flip_budget: int = 24,
    compact: bool = True,
) -> IDDQTestSet:
    """The identical search through the one-shot reference detector.

    Every detection call rebuilds the IDDQ simulator from scratch — the
    pre-engine behaviour, kept as the executable specification and the
    benchmark baseline.
    """
    return _generate(
        lambda ds, ps: detection_matrix(
            circuit, partition, ds, ps, library, technology
        ),
        circuit,
        defects,
        seed,
        random_vectors,
        restarts,
        flip_budget,
        compact,
    )


def _generate(
    detect: Detector,
    circuit: Circuit,
    defects: Sequence[Defect],
    seed: int,
    random_vectors: int,
    restarts: int,
    flip_budget: int,
    compact: bool,
    search_all: Callable[[list[int]], dict[int, np.ndarray]] | None = None,
) -> IDDQTestSet:
    if not defects:
        raise FaultSimError("no defects to target")
    num_inputs = len(circuit.input_names)
    rng = random.Random(seed)

    pool = random_patterns(num_inputs, random_vectors, seed=seed)
    matrix = detect(defects, pool)
    detected = matrix.any(axis=1)
    random_count = int(detected.sum())

    # Targeted phase: hill-climb per missed defect.  The serial
    # reference walks the defects in order through one shared RNG; a
    # ``search_all`` override (the defect-parallel mode) supplies the
    # found vectors for every undetected defect at once instead.
    extra_vectors: list[np.ndarray] = []
    targeted_hits: set[int] = set()
    if search_all is not None:
        found = search_all([d for d in range(len(defects)) if not detected[d]])
        for d in sorted(found):
            extra_vectors.append(found[d])
            targeted_hits.add(d)
    else:
        for d, defect in enumerate(defects):
            if detected[d]:
                continue
            vector = _search_activating_vector(
                detect, defect, rng, num_inputs, restarts, flip_budget
            )
            if vector is not None:
                extra_vectors.append(vector)
                targeted_hits.add(d)

    if extra_vectors:
        pool = np.vstack([pool, np.stack(extra_vectors)])
        matrix = detect(defects, pool)
        detected = matrix.any(axis=1)

    if compact:
        keep = compact_patterns(matrix)
        if keep.size:
            pool = pool[keep]
            matrix = matrix[:, keep]
        else:
            pool = pool[:1]
            matrix = matrix[:, :1]

    detected = matrix.any(axis=1)
    detected_ids = tuple(d.defect_id for d, hit in zip(defects, detected) if hit)
    undetected_ids = tuple(d.defect_id for d, hit in zip(defects, detected) if not hit)
    return IDDQTestSet(
        patterns=pool,
        detected_ids=detected_ids,
        undetected_ids=undetected_ids,
        random_detected=random_count,
        targeted_detected=len(targeted_hits),
    )


def _search_activating_vector(
    detect: Detector,
    defect: Defect,
    rng: random.Random,
    num_inputs: int,
    restarts: int,
    flip_budget: int,
) -> np.ndarray | None:
    """Hill-climb toward a vector that *detects* ``defect``.

    Each step evaluates the whole single-flip neighbourhood in one
    bit-parallel batch; any detecting neighbour wins immediately,
    otherwise a random flip keeps the walk moving (the landscape is flat
    away from activation, so greedy descent alone would stall).
    """
    for _ in range(restarts):
        vector = np.asarray(
            [rng.randint(0, 1) for _ in range(num_inputs)], dtype=np.uint8
        )
        for _ in range(flip_budget):
            batch = np.tile(vector, (num_inputs + 1, 1))
            for bit in range(num_inputs):
                batch[bit + 1, bit] ^= 1
            hits = detect([defect], batch)[0]
            if hits[0]:
                return vector
            winners = np.flatnonzero(hits[1:])
            if winners.size:
                flipped = int(winners[0])
                vector = batch[flipped + 1]
                return vector
            vector = vector.copy()
            vector[rng.randrange(num_inputs)] ^= 1
    return None
