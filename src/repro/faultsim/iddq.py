"""Per-vector, per-module quiescent current computation.

The fault-free IDDQ of a module for a given input vector is the sum of
its cells' state-dependent leakages; a defect adds its current to every
module containing one of its observing gates whenever the vector
activates it.  All of it is vectorised over patterns.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultSimError
from repro.faultsim.faults import Defect
from repro.faultsim.logic_sim import LogicSimulator, NodeValues
from repro.library.default_lib import generic_library
from repro.library.library import CellLibrary
from repro.netlist.circuit import Circuit
from repro.partition.partition import Partition

__all__ = ["IDDQSimulator"]


class IDDQSimulator:
    """Quiescent-current model for one circuit and library.

    Precompiles per-gate leakage lookup tables (leakage as a function of
    the input state index) so a batch of patterns turns into fancy
    indexing.
    """

    def __init__(self, circuit: Circuit, library: CellLibrary | None = None):
        self.circuit = circuit
        self.library = library or generic_library()
        self.simulator = LogicSimulator(circuit)
        # Per gate: fanin rows (for state extraction) and a leak table
        # indexed by the packed input state.
        self._gate_rows: list[int] = []
        self._fanin_rows: list[tuple[int, ...]] = []
        self._leak_tables: list[np.ndarray] = []
        row_of = self.simulator.row_of
        for name in circuit.gate_names:
            gate = circuit.gate(name)
            cell = self.library.for_gate(gate)
            states = 1 << gate.arity
            table = np.asarray(
                [cell.leakage_na_for_state(s) for s in range(states)], dtype=np.float64
            )
            self._gate_rows.append(row_of[name])
            self._fanin_rows.append(tuple(row_of[f] for f in gate.fanins))
            self._leak_tables.append(table)

    # ------------------------------------------------------------- fault-free
    def simulate_values(self, patterns: np.ndarray) -> NodeValues:
        return self.simulator.simulate(patterns)

    def gate_leakage_na(self, values: NodeValues) -> np.ndarray:
        """``(patterns, gates)`` state-dependent leakage matrix in nA."""
        num_patterns = values.num_patterns
        out = np.empty((num_patterns, len(self._gate_rows)), dtype=np.float64)
        unpacked: dict[int, np.ndarray] = {}

        def bits(row: int) -> np.ndarray:
            cached = unpacked.get(row)
            if cached is None:
                cached = np.unpackbits(
                    values.packed[row].view(np.uint8), bitorder="little"
                )[:num_patterns].astype(np.int64)
                unpacked[row] = cached
            return cached

        for g, fanins in enumerate(self._fanin_rows):
            state = np.zeros(num_patterns, dtype=np.int64)
            for position, row in enumerate(fanins):
                state |= bits(row) << position
            out[:, g] = self._leak_tables[g][state]
        return out

    def module_iddq_ua(
        self, partition: Partition, values: NodeValues
    ) -> dict[int, np.ndarray]:
        """Fault-free per-module IDDQ in uA, per pattern."""
        leak = self.gate_leakage_na(values)  # nA
        result: dict[int, np.ndarray] = {}
        for module in partition.module_ids:
            idx = np.fromiter(partition.gates_of(module), dtype=np.int64)
            result[module] = leak[:, idx].sum(axis=1) * 1e-3  # nA -> uA
        return result

    # ---------------------------------------------------------------- defects
    def defect_activation_bits(self, defect: Defect, values: NodeValues) -> np.ndarray:
        """Unpacked 0/1 activation vector over patterns."""
        packed = defect.activation(values)
        bits = np.unpackbits(packed.view(np.uint8), bitorder="little")
        return bits[: values.num_patterns]

    def observing_modules(self, defect: Defect, partition: Partition) -> tuple[int, ...]:
        index = self.circuit.gate_index
        modules = set()
        for gate_name in defect.observing_gates:
            gate_idx = index.get(gate_name)
            if gate_idx is None:
                raise FaultSimError(
                    f"{defect.defect_id}: observing gate {gate_name!r} is not a logic gate"
                )
            modules.add(partition.module_of(gate_idx))
        return tuple(sorted(modules))

    def defective_module_iddq_ua(
        self,
        defect: Defect,
        partition: Partition,
        values: NodeValues,
        fault_free: dict[int, np.ndarray] | None = None,
    ) -> dict[int, np.ndarray]:
        """Per-module IDDQ with the defect present.

        Note the logic values are the *fault-free* ones: IDDQ defects are
        precisely those that leave (or may leave) the logic behaviour
        intact while drawing static current — that is why logic testing
        misses them and current testing finds them.
        """
        base = fault_free or self.module_iddq_ua(partition, values)
        activation = self.defect_activation_bits(defect, values).astype(np.float64)
        result = {module: series.copy() for module, series in base.items()}
        for module in self.observing_modules(defect, partition):
            result[module] = result[module] + activation * defect.current_ua
        return result
