"""Per-vector, per-module quiescent current computation.

The fault-free IDDQ of a module for a given input vector is the sum of
its cells' state-dependent leakages; a defect adds its current to every
module containing one of its observing gates whenever the vector
activates it.  All of it is vectorised over patterns *and* gates: the
leak tables are built once per distinct library cell, gates are grouped
by arity so a batch of patterns turns into one fancy-indexing lookup
per arity group (no per-gate Python), and the per-module gate-index
arrays are computed once per ``(simulator, partition)`` and reused
across calls (keyed on :attr:`Partition.version` so mutation
invalidates them).

:meth:`IDDQSimulator.reference_gate_leakage_na` keeps the original
per-gate loop as the executable specification; the equivalence suite
asserts the grouped path reproduces it exactly.
"""

from __future__ import annotations

import numpy as np

from repro.backend import SimBackend
from repro.errors import FaultSimError
from repro.faultsim.faults import Defect
from repro.faultsim.logic_sim import LogicSimulator, NodeValues
from repro.library.default_lib import generic_library
from repro.library.library import CellLibrary
from repro.netlist.circuit import Circuit
from repro.partition.partition import Partition

__all__ = ["IDDQSimulator"]


class IDDQSimulator:
    """Quiescent-current model for one circuit and library.

    Precompiles per-gate leakage lookup tables (leakage as a function of
    the input state index, shared across gates bound to the same library
    cell) plus an arity-grouped index structure, so a batch of patterns
    turns into one table lookup per arity group.
    """

    #: Most-recently-used (partition -> module index arrays) cache slots.
    _MODULE_CACHE_SLOTS = 8

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary | None = None,
        backend: str | SimBackend | None = None,
    ):
        self.circuit = circuit
        self.library = library or generic_library()
        self.simulator = LogicSimulator(circuit, backend)
        # Per gate: fanin rows (for state extraction) and a leak table
        # indexed by the packed input state.  Tables are built once per
        # distinct cell and shared between same-cell gates.
        self._gate_rows: list[int] = []
        self._fanin_rows: list[tuple[int, ...]] = []
        self._leak_tables: list[np.ndarray] = []
        # Keyed on (cell, arity): a cell can be bound explicitly to gates
        # of different fanin counts, and the table length is 1 << arity.
        cell_tables: dict[tuple[str, int], np.ndarray] = {}
        by_arity: dict[int, list[int]] = {}
        row_of = self.simulator.row_of
        for g, name in enumerate(circuit.gate_names):
            gate = circuit.gate(name)
            cell = self.library.for_gate(gate)
            table = cell_tables.get((cell.name, gate.arity))
            if table is None:
                table = np.asarray(
                    [cell.leakage_na_for_state(s) for s in range(1 << gate.arity)],
                    dtype=np.float64,
                )
                cell_tables[(cell.name, gate.arity)] = table
            self._gate_rows.append(row_of[name])
            self._fanin_rows.append(tuple(row_of[f] for f in gate.fanins))
            self._leak_tables.append(table)
            by_arity.setdefault(gate.arity, []).append(g)
        # Arity groups: (arity, gate columns, (g, arity) fanin row matrix,
        # flattened per-gate leak tables plus (g, 1) offsets into them) —
        # one shifted-bit state build and one ``np.take`` each.
        self._arity_groups: list[
            tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        num_gates = len(self._gate_rows)
        self._gate_group_id = np.zeros(num_gates, dtype=np.int32)
        self._gate_group_pos = np.zeros(num_gates, dtype=np.int32)
        for group_id, arity in enumerate(sorted(by_arity)):
            cols = np.asarray(by_arity[arity], dtype=np.int64)
            fanins = np.asarray(
                [self._fanin_rows[g] for g in cols], dtype=np.int64
            ).reshape(len(cols), arity)
            flat = np.concatenate([self._leak_tables[g] for g in cols])
            offsets = (
                np.arange(len(cols), dtype=np.int32)[:, None] << arity
            )
            self._arity_groups.append((arity, cols, fanins, flat, offsets))
            self._gate_group_id[cols] = group_id
            self._gate_group_pos[cols] = np.arange(len(cols), dtype=np.int32)
        self._module_cache: dict[int, tuple[Partition, int, dict[int, np.ndarray]]] = {}

    # ------------------------------------------------------------- fault-free
    def simulate_values(self, patterns: np.ndarray) -> NodeValues:
        return self.simulator.simulate(patterns)

    def gate_leakage_na(self, values: NodeValues) -> np.ndarray:
        """``(patterns, gates)`` state-dependent leakage matrix in nA.

        Arity-grouped and fully vectorised; exactly reproduces
        :meth:`reference_gate_leakage_na`.
        """
        bits = self.unpack_bits(values)
        out = np.empty((len(self._gate_rows), values.num_patterns), dtype=np.float64)
        for arity, cols, fanins, flat, offsets in self._arity_groups:
            state = bits[fanins[:, 0]]
            for position in range(1, arity):
                state = state | (bits[fanins[:, position]] << position)
            out[cols] = np.take(flat, state + offsets)
        # C-contiguous (patterns, gates), like the reference loop builds:
        # column gathers off it stay C-contiguous, so downstream pairwise
        # summations (module IDDQ) are bit-identical to the loop path.
        return np.ascontiguousarray(out.T)

    def unpack_bits(self, values: NodeValues) -> np.ndarray:
        """Dense ``(nodes, patterns)`` int32 0/1 matrix of all node values."""
        return np.unpackbits(
            np.ascontiguousarray(values.packed).view(np.uint8),
            axis=1,
            bitorder="little",
        )[:, : values.num_patterns].astype(np.int32)

    def leakage_rows(self, bits: np.ndarray, gates: np.ndarray) -> np.ndarray:
        """``(len(gates), patterns)`` leakage rows for a gate subset.

        Each row is the same table lookup :meth:`gate_leakage_na` would
        produce for that gate — exact down to the float, which is what
        lets the engine restrict work to a defect's observing modules.
        """
        out = np.empty((len(gates), bits.shape[1]), dtype=np.float64)
        group_ids = self._gate_group_id[gates]
        for group_id in np.unique(group_ids):
            arity, _, fanins, flat, _ = self._arity_groups[group_id]
            sel = np.flatnonzero(group_ids == group_id)
            pos = self._gate_group_pos[gates[sel]].astype(np.int64)
            state = bits[fanins[pos, 0]]
            for position in range(1, arity):
                state = state | (bits[fanins[pos, position]] << position)
            out[sel] = np.take(flat, state + (pos[:, None].astype(np.int32) << arity))
        return out

    def reference_gate_leakage_na(self, values: NodeValues) -> np.ndarray:
        """Per-gate loop leakage computation — the executable
        specification for :meth:`gate_leakage_na`."""
        num_patterns = values.num_patterns
        out = np.empty((num_patterns, len(self._gate_rows)), dtype=np.float64)
        unpacked: dict[int, np.ndarray] = {}

        def bits(row: int) -> np.ndarray:
            cached = unpacked.get(row)
            if cached is None:
                cached = np.unpackbits(
                    values.packed[row].view(np.uint8), bitorder="little"
                )[:num_patterns].astype(np.int64)
                unpacked[row] = cached
            return cached

        for g, fanins in enumerate(self._fanin_rows):
            state = np.zeros(num_patterns, dtype=np.int64)
            for position, row in enumerate(fanins):
                state |= bits(row) << position
            out[:, g] = self._leak_tables[g][state]
        return out

    def module_indices(self, partition: Partition) -> dict[int, np.ndarray]:
        """Per-module gate index arrays, computed once per partition state.

        Cached on ``(id(partition), partition.version)``; the cache holds
        a strong reference to the partition, so a cached id cannot be
        recycled by the allocator while its entry is alive.
        """
        key = id(partition)
        cached = self._module_cache.get(key)
        if (
            cached is not None
            and cached[0] is partition
            and cached[1] == partition.version
        ):
            return cached[2]
        indices = {
            module: np.fromiter(partition.gates_of(module), dtype=np.int64)
            for module in partition.module_ids
        }
        if len(self._module_cache) >= self._MODULE_CACHE_SLOTS:
            self._module_cache.pop(next(iter(self._module_cache)))
        self._module_cache[key] = (partition, partition.version, indices)
        return indices

    def module_iddq_ua(
        self, partition: Partition, values: NodeValues
    ) -> dict[int, np.ndarray]:
        """Fault-free per-module IDDQ in uA, per pattern."""
        return self.module_iddq_from_leak(partition, self.gate_leakage_na(values))

    def module_iddq_from_leak(
        self, partition: Partition, leak: np.ndarray
    ) -> dict[int, np.ndarray]:
        """Per-module IDDQ from an already-computed leakage matrix.

        Split out so :class:`~repro.faultsim.engine.CoverageEngine` can
        reuse one leakage matrix across partitions and defect batches.
        """
        return {
            module: leak[:, idx].sum(axis=1) * 1e-3  # nA -> uA
            for module, idx in self.module_indices(partition).items()
        }

    @property
    def fanin_rows(self) -> list[tuple[int, ...]]:
        """Per-gate fanin node rows (gate order) — the dependency sets
        consumers use to invalidate per-gate leakage caches."""
        return self._fanin_rows

    def module_dependency_rows(
        self, partition: Partition, module: int
    ) -> np.ndarray:
        """Node rows a module's background IDDQ depends on.

        Cell leakage is a function of the gate's *input* state only, so
        the rows are the union of the module's gates' fanin rows — the
        invalidation set for any cache of the module's background
        series.
        """
        idx = self.module_indices(partition)[module]
        if not len(idx):
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.concatenate([self._fanin_rows[g] for g in idx]).astype(np.int64)
        )

    def module_background_ua(
        self, partition: Partition, bits: np.ndarray, modules
    ) -> dict[int, np.ndarray]:
        """Fault-free IDDQ for a *subset* of modules, per pattern.

        Computes leakage only for the gates of the requested modules —
        exactly what a single-defect detection needs — while reproducing
        :meth:`module_iddq_ua` bit for bit: the column gather
        ``leak[:, idx]`` materialises transposed-of-C (gate-major), so
        the transposed row block here has the identical stride pattern
        and the axis-1 summation reduces in the identical order.
        """
        indices = self.module_indices(partition)
        result: dict[int, np.ndarray] = {}
        for module in modules:
            idx = indices[module]
            result[module] = self.leakage_rows(bits, idx).T.sum(axis=1) * 1e-3
        return result

    # ---------------------------------------------------------------- defects
    def defect_activation_bits(self, defect: Defect, values: NodeValues) -> np.ndarray:
        """Unpacked 0/1 activation vector over patterns."""
        packed = defect.activation(values)
        bits = np.unpackbits(packed.view(np.uint8), bitorder="little")
        return bits[: values.num_patterns]

    def observing_modules(self, defect: Defect, partition: Partition) -> tuple[int, ...]:
        index = self.circuit.gate_index
        modules = set()
        for gate_name in defect.observing_gates:
            gate_idx = index.get(gate_name)
            if gate_idx is None:
                raise FaultSimError(
                    f"{defect.defect_id}: observing gate {gate_name!r} is not a logic gate"
                )
            modules.add(partition.module_of(gate_idx))
        return tuple(sorted(modules))

    def defective_module_iddq_ua(
        self,
        defect: Defect,
        partition: Partition,
        values: NodeValues,
        fault_free: dict[int, np.ndarray] | None = None,
    ) -> dict[int, np.ndarray]:
        """Per-module IDDQ with the defect present.

        Note the logic values are the *fault-free* ones: IDDQ defects are
        precisely those that leave (or may leave) the logic behaviour
        intact while drawing static current — that is why logic testing
        misses them and current testing finds them.
        """
        base = fault_free or self.module_iddq_ua(partition, values)
        activation = self.defect_activation_bits(defect, values).astype(np.float64)
        result = {module: series.copy() for module, series in base.items()}
        for module in self.observing_modules(defect, partition):
            result[module] = result[module] + activation * defect.current_ua
        return result
