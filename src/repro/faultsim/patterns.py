"""Test pattern generation and compaction.

The paper notes the partitioning approach "does not modify the logic
structure, [so] the test vector set needed to achieve a certain quality
goal does not change" (§3.4) — patterns here are inputs to the coverage
and test-time experiments, not something the partitioner produces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultSimError

__all__ = ["random_patterns", "exhaustive_patterns", "compact_patterns"]


def random_patterns(num_inputs: int, count: int, seed: int = 0) -> np.ndarray:
    """``(count, num_inputs)`` uniform random 0/1 matrix."""
    if num_inputs < 1 or count < 1:
        raise FaultSimError("need at least one input and one pattern")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(count, num_inputs), dtype=np.uint8)


def exhaustive_patterns(num_inputs: int, limit: int = 20) -> np.ndarray:
    """All ``2^num_inputs`` patterns (guarded against blowing up)."""
    if num_inputs < 1:
        raise FaultSimError("need at least one input")
    if num_inputs > limit:
        raise FaultSimError(
            f"exhaustive patterns for {num_inputs} inputs exceed the 2^{limit} guard"
        )
    count = 1 << num_inputs
    values = np.arange(count, dtype=np.int64)
    columns = [(values >> k) & 1 for k in range(num_inputs)]
    return np.stack(columns, axis=1).astype(np.uint8)


def compact_patterns(detection_matrix: np.ndarray) -> np.ndarray:
    """Greedy set-cover compaction.

    ``detection_matrix[d, p]`` is truthy when pattern ``p`` detects
    defect ``d``.  Returns indices of a pattern subset preserving the
    detection of every detectable defect, greedily choosing the pattern
    covering the most not-yet-covered defects each round.
    """
    matrix = np.asarray(detection_matrix, dtype=bool)
    if matrix.ndim != 2:
        raise FaultSimError(f"detection matrix must be 2-D, got shape {matrix.shape}")
    detectable = matrix.any(axis=1)
    remaining = matrix[detectable].copy()
    chosen: list[int] = []
    while remaining.size and remaining.any():
        gains = remaining.sum(axis=0)
        pattern = int(gains.argmax())
        if gains[pattern] == 0:
            break
        chosen.append(pattern)
        remaining = remaining[~remaining[:, pattern]]
    return np.asarray(sorted(chosen), dtype=np.int64)
