"""The content-addressed on-disk artifact store.

Expensive artifacts — separation matrices, stuck-at detection matrices,
ATPG test sets, optimiser results — are memoized on disk, keyed by a
:mod:`~repro.runtime.fingerprint` digest of everything they depend on.

Layout (one file per artifact, ``npz`` container)::

    <root>/v1/<kind>/<key[:2]>/<key>.npz

* ``<root>`` comes from the constructor, the ``REPRO_CACHE_DIR``
  environment variable, or ``~/.cache/repro-part-iddq``;
* ``v1`` is the *store* layout version; each artifact kind additionally
  carries its own schema version inside the cache key (bump the kind's
  version in :mod:`repro.runtime.artifacts` to invalidate just that
  kind);
* the two-hex-char fan-out keeps directories small under large
  campaigns.

An artifact is a dict of numpy arrays plus a JSON-serialisable metadata
dict (stored inside the npz as one JSON string), written atomically
(temp file + rename), so concurrent writers of the *same* key are
harmless — last rename wins with identical bytes.  Round-trips are
**exact**: arrays keep dtype/shape/bytes, floats survive through JSON's
shortest-repr encoding.  A corrupt or truncated file is treated as a
miss and moved aside to ``<root>/quarantine/<kind>/`` under a
collision-safe name — never unlinked, so the bad bytes stay available
for a postmortem and a reader that lost the atomic-replace race cannot
delete a concurrently re-written good artifact.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

__all__ = ["Artifact", "ArtifactStore", "default_cache_dir"]

_LAYOUT = "v1"
_META_KEY = "__meta__"

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-part-iddq``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-part-iddq"


@dataclass(frozen=True)
class Artifact:
    """One loaded artifact: named arrays plus JSON metadata."""

    kind: str
    key: str
    arrays: Mapping[str, np.ndarray]
    meta: Mapping[str, object]


@dataclass
class StoreStats:
    """Hit/miss/put counters, per kind and total."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    by_kind: dict = field(default_factory=dict)

    def _bump(self, kind: str, slot: str) -> None:
        entry = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0, "puts": 0})
        entry[slot] += 1
        setattr(self, slot, getattr(self, slot) + 1)


class ArtifactStore:
    """Content-addressed npz artifact cache (see module docstring)."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = StoreStats()

    # ------------------------------------------------------------------ paths
    def path_for(self, kind: str, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"artifact key must be a hex digest, got {key!r}")
        return self.root / _LAYOUT / kind / key[:2] / f"{key}.npz"

    # -------------------------------------------------------------- quarantine
    def quarantine_dir(self, kind: str) -> Path:
        return self.root / "quarantine" / kind

    def _quarantine(self, path: Path, kind: str) -> Path | None:
        """Move a corrupt file to ``<root>/quarantine/<kind>/`` under a
        collision-safe name; returns the new path (``None`` if the file
        vanished or the move failed — quarantining is best-effort).

        Moving (not unlinking) keeps the bad bytes for a postmortem and
        closes the unlink race: a reader that opened a file mid
        ``os.replace`` must not *delete* the path, which by now may hold
        a freshly re-written good artifact — at worst that good file is
        set aside and rebuilt, never destroyed.
        """
        try:
            qdir = self.quarantine_dir(kind)
            qdir.mkdir(parents=True, exist_ok=True)
            for n in range(10_000):
                target = qdir / f"{path.stem}.{n}{path.suffix}"
                if target.exists():
                    continue
                path.rename(target)
                self.stats.quarantined += 1
                return target
        except OSError:
            pass
        return None

    # ------------------------------------------------------------------ access
    def get(self, kind: str, key: str) -> Artifact | None:
        """Load an artifact, or ``None`` on miss (corrupt files count as
        misses and are quarantined)."""
        path = self.path_for(kind, key)
        if not path.is_file():
            self.stats._bump(kind, "misses")
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                arrays = {
                    name: payload[name] for name in payload.files if name != _META_KEY
                }
                meta = json.loads(str(payload[_META_KEY]))
        except (OSError, ValueError, KeyError, json.JSONDecodeError,
                zipfile.BadZipFile):
            # A half-written or foreign file: set it aside and rebuild.
            self._quarantine(path, kind)
            self.stats._bump(kind, "misses")
            return None
        self.stats._bump(kind, "hits")
        return Artifact(kind=kind, key=key, arrays=arrays, meta=meta)

    def put(
        self,
        kind: str,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, object] | None = None,
    ) -> Path:
        """Write an artifact atomically; returns its path."""
        if _META_KEY in arrays:
            raise ValueError(f"array name {_META_KEY!r} is reserved")
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {name: np.asarray(value) for name, value in arrays.items()}
        for name, value in payload.items():
            if value.dtype.kind == "O":
                raise ValueError(
                    f"array {name!r} has object dtype; artifacts must be "
                    "plain numeric/bool/bytes arrays (no pickles)"
                )
        payload[_META_KEY] = np.asarray(json.dumps(meta or {}, sort_keys=True))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self.stats._bump(kind, "puts")
        return path

    def fetch(
        self,
        kind: str,
        key: str,
        build: Callable[[], tuple[Mapping[str, np.ndarray], Mapping[str, object]]],
    ) -> tuple[Artifact, bool]:
        """Memoize: load ``(kind, key)`` or build, store and reload-shape it.

        Returns ``(artifact, hit)``.  The built payload is returned
        as-is (not re-read from disk) — the round-trip test suite pins
        write/read exactness separately.
        """
        cached = self.get(kind, key)
        if cached is not None:
            return cached, True
        arrays, meta = build()
        self.put(kind, key, arrays, meta)
        return (
            Artifact(
                kind=kind,
                key=key,
                arrays={n: np.asarray(v) for n, v in arrays.items()},
                meta=dict(meta),
            ),
            False,
        )
