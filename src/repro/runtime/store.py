"""The content-addressed on-disk artifact store.

Expensive artifacts — separation matrices, stuck-at detection matrices,
ATPG test sets, optimiser results — are memoized on disk, keyed by a
:mod:`~repro.runtime.fingerprint` digest of everything they depend on.

Layout (one file per artifact, ``npz`` container)::

    <root>/v1/<kind>/<key[:2]>/<key>.npz

* ``<root>`` comes from the constructor, the ``REPRO_CACHE_DIR``
  environment variable, or ``~/.cache/repro-part-iddq``;
* ``v1`` is the *store* layout version; each artifact kind additionally
  carries its own schema version inside the cache key (bump the kind's
  version in :mod:`repro.runtime.artifacts` to invalidate just that
  kind);
* the two-hex-char fan-out keeps directories small under large
  campaigns.

An artifact is a dict of numpy arrays plus a JSON-serialisable metadata
dict (stored inside the npz as one JSON string), written atomically
(temp file + rename), so concurrent writers of the *same* key are
harmless — last rename wins with identical bytes.  Round-trips are
**exact**: arrays keep dtype/shape/bytes, floats survive through JSON's
shortest-repr encoding.  A corrupt or truncated file is treated as a
miss and moved aside to ``<root>/quarantine/<kind>/`` under a
collision-safe name — never unlinked, so the bad bytes stay available
for a postmortem and a reader that lost the atomic-replace race cannot
delete a concurrently re-written good artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro import obs
from repro.runtime.faults import FaultPlan, corrupt_file

__all__ = ["Artifact", "ArtifactStore", "default_cache_dir"]

_LAYOUT = "v1"
_META_KEY = "__meta__"
_DIGEST_KEY = "__digest__"

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable turning on payload-digest verification on read.
CACHE_VERIFY_ENV = "REPRO_CACHE_VERIFY"


def _payload_digest(arrays: Mapping[str, np.ndarray], meta_json: str) -> str:
    """Canonical blake2b over the payload: sorted array names with
    dtype/shape/bytes, then the meta JSON string."""
    digest = hashlib.blake2b(digest_size=20)
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(value.dtype).encode())
        digest.update(repr(value.shape).encode())
        digest.update(value.tobytes())
    digest.update(meta_json.encode())
    return digest.hexdigest()


class _DigestMismatch(Exception):
    """Internal: stored payload digest does not match the bytes read."""


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-part-iddq``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-part-iddq"


@dataclass(frozen=True)
class Artifact:
    """One loaded artifact: named arrays plus JSON metadata."""

    kind: str
    key: str
    arrays: Mapping[str, np.ndarray]
    meta: Mapping[str, object]


@dataclass
class StoreStats:
    """Hit/miss/put counters, per kind and total.

    The attributes and ``by_kind`` dict are the stable, always-on view;
    every bump is mirrored into the process-wide
    :data:`repro.obs.METRICS` registry (``store.<slot>`` and
    ``store.<slot>.<kind>``) when metrics are enabled, which is where
    the campaign manifest's per-entry cache metrics come from.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    put_errors: int = 0
    by_kind: dict = field(default_factory=dict)

    def _bump(self, kind: str, slot: str) -> None:
        entry = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0, "puts": 0})
        entry[slot] += 1
        setattr(self, slot, getattr(self, slot) + 1)
        obs.METRICS.inc(f"store.{slot}")
        obs.METRICS.inc(f"store.{slot}.{kind}")


class ArtifactStore:
    """Content-addressed npz artifact cache (see module docstring).

    ``verify`` enables payload-digest verification on every read
    (argument > ``REPRO_CACHE_VERIFY`` > off): each ``put`` embeds a
    canonical blake2b of arrays + metadata, and a read whose recomputed
    digest mismatches is quarantined and treated as a miss — catching
    corruption that still parses as a valid npz.  ``fault_plan``
    (default: ``REPRO_FAULT_PLAN``) lets the deterministic harness
    corrupt the artifact written by a chosen put ordinal
    (``put:<n>:corrupt``, see :mod:`repro.runtime.faults`).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        verify: bool | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        if verify is None:
            env = os.environ.get(CACHE_VERIFY_ENV, "").strip().lower()
            verify = env in ("1", "true", "yes", "on")
        self.verify = verify
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self.stats = StoreStats()
        self._put_ordinal = 0

    # ------------------------------------------------------------------ paths
    def path_for(self, kind: str, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"artifact key must be a hex digest, got {key!r}")
        return self.root / _LAYOUT / kind / key[:2] / f"{key}.npz"

    # -------------------------------------------------------------- quarantine
    def quarantine_dir(self, kind: str) -> Path:
        return self.root / "quarantine" / kind

    def _quarantine(self, path: Path, kind: str) -> Path | None:
        """Move a corrupt file to ``<root>/quarantine/<kind>/`` under a
        collision-safe name; returns the new path (``None`` if the file
        vanished or the move failed — quarantining is best-effort).

        Moving (not unlinking) keeps the bad bytes for a postmortem and
        closes the unlink race: a reader that opened a file mid
        ``os.replace`` must not *delete* the path, which by now may hold
        a freshly re-written good artifact — at worst that good file is
        set aside and rebuilt, never destroyed.
        """
        try:
            qdir = self.quarantine_dir(kind)
            qdir.mkdir(parents=True, exist_ok=True)
            for n in range(10_000):
                target = qdir / f"{path.stem}.{n}{path.suffix}"
                if target.exists():
                    continue
                path.rename(target)
                self.stats.quarantined += 1
                obs.METRICS.inc("store.quarantined")
                obs.TRACER.instant(
                    "store.quarantine", kind=kind, source=str(path),
                    quarantined_to=str(target),
                )
                return target
        except OSError:
            pass
        return None

    # ------------------------------------------------------------------ access
    def get(self, kind: str, key: str) -> Artifact | None:
        """Load an artifact, or ``None`` on miss (corrupt files —
        including digest mismatches when ``verify`` is on — count as
        misses and are quarantined)."""
        path = self.path_for(kind, key)
        with obs.TRACER.span("store.get", kind=kind, key=key[:8]) as span:
            if not path.is_file():
                self.stats._bump(kind, "misses")
                span.set(outcome="miss")
                return None
            try:
                with np.load(path, allow_pickle=False) as payload:
                    arrays = {
                        name: payload[name]
                        for name in payload.files
                        if name not in (_META_KEY, _DIGEST_KEY)
                    }
                    meta_json = str(payload[_META_KEY])
                    meta = json.loads(meta_json)
                    if self.verify and _DIGEST_KEY in payload.files:
                        stored = str(payload[_DIGEST_KEY])
                        if _payload_digest(arrays, meta_json) != stored:
                            obs.METRICS.inc("store.digest_mismatches")
                            raise _DigestMismatch(path)
                        obs.METRICS.inc("store.digest_verified")
            except (OSError, ValueError, KeyError, json.JSONDecodeError,
                    zipfile.BadZipFile, _DigestMismatch) as exc:
                # A half-written, foreign or bit-rotted file: set it aside
                # and rebuild.
                self._quarantine(path, kind)
                self.stats._bump(kind, "misses")
                span.set(outcome="corrupt", error=type(exc).__name__)
                return None
            self.stats._bump(kind, "hits")
            span.set(outcome="hit")
            return Artifact(kind=kind, key=key, arrays=arrays, meta=meta)

    def put(
        self,
        kind: str,
        key: str,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, object] | None = None,
    ) -> Path:
        """Write an artifact atomically; returns its path."""
        if _META_KEY in arrays or _DIGEST_KEY in arrays:
            raise ValueError(
                f"array names {_META_KEY!r}/{_DIGEST_KEY!r} are reserved"
            )
        payload = {name: np.asarray(value) for name, value in arrays.items()}
        for name, value in payload.items():
            if value.dtype.kind == "O":
                raise ValueError(
                    f"array {name!r} has object dtype; artifacts must be "
                    "plain numeric/bool/bytes arrays (no pickles)"
                )
        meta_json = json.dumps(meta or {}, sort_keys=True)
        digest = _payload_digest(payload, meta_json)
        payload[_META_KEY] = np.asarray(meta_json)
        payload[_DIGEST_KEY] = np.asarray(digest)
        path = self.path_for(kind, key)
        with obs.TRACER.span("store.put", kind=kind, key=key[:8]):
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(handle, **payload)
                os.replace(tmp, path)
            except BaseException:
                Path(tmp).unlink(missing_ok=True)
                raise
        self.stats._bump(kind, "puts")
        ordinal = self._put_ordinal
        self._put_ordinal += 1
        if self.fault_plan and self.fault_plan.match("put", ordinal) == "corrupt":
            corrupt_file(path)
        return path

    def fetch(
        self,
        kind: str,
        key: str,
        build: Callable[[], tuple[Mapping[str, np.ndarray], Mapping[str, object]]],
    ) -> tuple[Artifact, bool]:
        """Memoize: load ``(kind, key)`` or build, store and reload-shape it.

        Returns ``(artifact, hit)``.  The built payload is returned
        as-is (not re-read from disk) — the round-trip test suite pins
        write/read exactness separately.  A write that fails with
        ``OSError`` (read-only cache directory, disk full) degrades to
        compute-without-cache with a warning: the freshly built value
        is still returned, only the memoization is lost.
        """
        cached = self.get(kind, key)
        if cached is not None:
            return cached, True
        arrays, meta = build()
        try:
            self.put(kind, key, arrays, meta)
        except OSError as exc:
            self.stats.put_errors += 1
            obs.METRICS.inc("store.put_errors")
            obs.TRACER.instant(
                "store.degraded", kind=kind, key=key[:8],
                error=f"{type(exc).__name__}: {exc}",
            )
            warnings.warn(
                f"artifact store write failed for {kind}/{key[:8]} "
                f"({type(exc).__name__}: {exc}); continuing without cache",
                RuntimeWarning,
                stacklevel=2,
            )
        return (
            Artifact(
                kind=kind,
                key=key,
                arrays={n: np.asarray(v) for n, v in arrays.items()},
                meta=dict(meta),
            ),
            False,
        )
