"""Typed artifact helpers: the cacheable products of each pipeline stage.

Each helper owns one artifact *kind* — its schema version, its cache-key
recipe (which inputs invalidate it) and its exact round-trip encoding:

========================  =====================================================
kind                      keyed on
========================  =====================================================
``separation``            circuit, cap, schema
``stuckat-detection``     circuit, fault list, patterns, schema
``iddq-testset``          circuit, partition, defects, library, technology,
                          search parameters, serial/defect-parallel mode
``optimize-portfolio``    circuit, library, technology, weights, degradation
                          flags, ES/annealing/KL parameters, seeds
========================  =====================================================

Worker count (``jobs``) is deliberately *not* part of any key: every
parallel build is deterministic and result-identical at any worker
count (the defect-parallel ATPG differs from the *serial-reference*
walk, which is why the mode flag — not the job count — is keyed).

All helpers return ``(value, hit)`` so callers (the campaign manifest,
the benchmarks) can report cache effectiveness.  Failure handling is
inherited from :meth:`~repro.runtime.store.ArtifactStore.fetch`: a
corrupt cached file is quarantined and rebuilt, and a cache directory
that cannot be written degrades to compute-without-cache with a warning
(DESIGN.md §10) — helpers never fail because of the cache.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.runtime import fingerprint as fp
from repro.runtime.store import ArtifactStore

__all__ = [
    "cached_detection_matrix",
    "cached_iddq_test_set",
    "cached_portfolio",
    "cached_separation_matrix",
]

#: Per-kind schema versions; bump to invalidate one kind only.
SCHEMA = {
    "separation": 1,
    "stuckat-detection": 1,
    "iddq-testset": 1,
    "optimize-portfolio": 1,
}


# ---------------------------------------------------------------- separation
def cached_separation_matrix(
    store: ArtifactStore, circuit, cap: int, backend=None
):
    """Memoized :class:`~repro.analysis.separation.SeparationMatrix`.

    Returns ``(matrix, hit)``.  The cached payload is the raw uint8
    distance matrix; reconstruction is exact by construction.
    """
    from repro.analysis.separation import SeparationMatrix

    key = fp.combine(
        "separation", SCHEMA["separation"], fp.fingerprint_circuit(circuit), cap
    )

    def build():
        matrix = SeparationMatrix(circuit, cap, backend=backend).matrix
        return {"matrix": matrix}, {"cap": cap, "circuit": circuit.name}

    artifact, hit = store.fetch("separation", key, build)
    return SeparationMatrix.from_matrix(artifact.arrays["matrix"], cap), hit


# ------------------------------------------------------------------ stuck-at
def _fault_fingerprint(faults: Sequence) -> str:
    return fp.fingerprint_value([(f.net, f.value) for f in faults])


def cached_detection_matrix(
    store: ArtifactStore,
    circuit,
    faults: Sequence,
    patterns: np.ndarray,
    jobs: int | None = None,
):
    """Memoized stuck-at detection matrix (sharded build on miss).

    Returns ``(matrix, hit)`` with the boolean ``(faults, patterns)``
    matrix stored bit-packed (exactly recoverable: the unpacked tail
    bits beyond ``patterns`` are dropped on load).
    """
    from repro.runtime.parallel import sharded_detection_matrix

    patterns = np.ascontiguousarray(patterns)
    key = fp.combine(
        "stuckat-detection",
        SCHEMA["stuckat-detection"],
        fp.fingerprint_circuit(circuit),
        _fault_fingerprint(faults),
        fp.fingerprint_value(patterns),
    )
    num_patterns = int(patterns.shape[0])

    def build():
        matrix = sharded_detection_matrix(circuit, faults, patterns, jobs=jobs)
        packed = np.packbits(matrix, axis=1)
        return {"packed": packed}, {
            "faults": len(faults),
            "patterns": num_patterns,
            "circuit": circuit.name,
        }

    artifact, hit = store.fetch("stuckat-detection", key, build)
    packed = artifact.arrays["packed"]
    matrix = np.unpackbits(packed, axis=1, count=num_patterns).astype(bool)
    return matrix, hit


# ---------------------------------------------------------------------- ATPG
def _defect_fingerprint(defects: Sequence) -> str:
    return fp.fingerprint_value(list(defects))


def cached_iddq_test_set(
    store: ArtifactStore,
    circuit,
    partition,
    defects: Sequence,
    library=None,
    technology=None,
    seed: int = 0,
    random_vectors: int = 128,
    restarts: int = 4,
    flip_budget: int = 24,
    compact: bool = True,
    defect_parallel: bool = False,
    jobs: int | None = None,
):
    """Memoized :func:`~repro.faultsim.atpg.generate_iddq_tests`.

    Returns ``(IDDQTestSet, hit)``.  Patterns round-trip exactly; the
    coverage split is stored as id lists in the metadata.
    """
    from repro.faultsim.atpg import IDDQTestSet, generate_iddq_tests
    from repro.library.default_lib import generic_library, generic_technology

    library = library or generic_library()
    technology = technology or generic_technology()
    key = fp.combine(
        "iddq-testset",
        SCHEMA["iddq-testset"],
        fp.fingerprint_circuit(circuit),
        fp.fingerprint_partition(partition),
        _defect_fingerprint(defects),
        fp.fingerprint_library(library),
        fp.fingerprint_technology(technology),
        seed,
        random_vectors,
        restarts,
        flip_budget,
        compact,
        defect_parallel,
    )

    def build():
        tests = generate_iddq_tests(
            circuit,
            partition,
            defects,
            library=library,
            technology=technology,
            seed=seed,
            random_vectors=random_vectors,
            restarts=restarts,
            flip_budget=flip_budget,
            compact=compact,
            defect_parallel=defect_parallel,
            jobs=jobs,
        )
        return {"patterns": tests.patterns}, {
            "detected_ids": list(tests.detected_ids),
            "undetected_ids": list(tests.undetected_ids),
            "random_detected": tests.random_detected,
            "targeted_detected": tests.targeted_detected,
        }

    artifact, hit = store.fetch("iddq-testset", key, build)
    tests = IDDQTestSet(
        patterns=artifact.arrays["patterns"],
        detected_ids=tuple(artifact.meta["detected_ids"]),
        undetected_ids=tuple(artifact.meta["undetected_ids"]),
        random_detected=int(artifact.meta["random_detected"]),
        targeted_detected=int(artifact.meta["targeted_detected"]),
    )
    return tests, hit


# ----------------------------------------------------------------- portfolio
def cached_portfolio(
    store: ArtifactStore,
    evaluator,
    seeds: Sequence[int],
    evolution_params=None,
    annealing_params=None,
    kl_passes: int = 2,
    jobs: int | None = None,
):
    """Memoized multi-seed optimiser portfolio.

    Returns ``(best_partition, meta, hit)`` where ``meta`` records the
    winning seed/optimizer/cost.  The artifact stores only the winning
    assignment array — evaluations are recomputable exactly from it.
    """
    from repro.optimize.portfolio import portfolio_partition
    from repro.partition.partition import Partition

    seeds = list(seeds)
    key = fp.combine(
        "optimize-portfolio",
        SCHEMA["optimize-portfolio"],
        fp.fingerprint_circuit(evaluator.circuit),
        fp.fingerprint_library(evaluator.library),
        fp.fingerprint_technology(evaluator.technology),
        fp.fingerprint_value(evaluator.weights),
        evaluator.time_resolved_degradation,
        fp.fingerprint_value(evolution_params) if evolution_params else None,
        fp.fingerprint_value(annealing_params) if annealing_params else None,
        kl_passes,
        seeds,
    )

    def build():
        result = portfolio_partition(
            evaluator,
            evolution_params=evolution_params,
            annealing_params=annealing_params,
            seed=seeds[0] if len(seeds) == 1 else None,
            seeds=seeds if len(seeds) > 1 else None,
            kl_passes=kl_passes,
            jobs=jobs,
        )
        assignment = result.best.partition.module_of_array()
        return {"assignment": assignment}, {
            "cost": result.best_cost,
            "feasible": result.feasible,
            "optimizer": result.optimizer,
            "seed": result.seed,
            "evaluations": result.evaluations,
            "num_modules": result.best.num_modules,
        }

    artifact, hit = store.fetch("optimize-portfolio", key, build)
    assignment = artifact.arrays["assignment"]
    partition = Partition(
        evaluator.circuit, dict(enumerate(int(m) for m in assignment))
    )
    return partition, dict(artifact.meta), hit
