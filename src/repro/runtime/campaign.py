"""The campaign runner: experiments x circuits through cache + executor.

``python -m repro.experiments campaign`` drives the paper's pipeline
stages — separation matrix, stuck-at detection matrix, IDDQ ATPG,
partition optimisation — over a list of benchmark circuits, memoizing
every stage in the artifact store and sharding the parallelisable
stages across the process pool.  The run writes a JSON **manifest**
recording, per (circuit, stage): the artifact cache key, whether it was
served from cache, wall-clock seconds and stage-specific metadata —
the machine-readable receipt the benchmarks and CI assert against
(e.g. "a second run serves separation/detection/test-set artifacts from
the cache").
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.errors import ExperimentError
from repro.runtime.artifacts import (
    cached_detection_matrix,
    cached_iddq_test_set,
    cached_portfolio,
    cached_separation_matrix,
)
from repro.runtime.executor import resolve_jobs
from repro.runtime.store import ArtifactStore

__all__ = [
    "CampaignConfig",
    "render_manifest",
    "run_campaign",
    "save_manifest",
    "STAGES",
]

#: Stage execution order — later stages reuse earlier artifacts (the
#: optimiser and ATPG stages consume the cached separation matrix).
STAGES: tuple[str, ...] = ("separation", "stuck-at", "atpg", "optimize")

MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: circuits x stages, budgets, cache and pool knobs."""

    circuits: tuple[str, ...] = ("c432", "c880")
    stages: tuple[str, ...] = STAGES
    jobs: int | None = None
    cache_dir: str | None = None
    seed: int = 1995
    quick: bool = True

    def __post_init__(self) -> None:
        if not self.circuits:
            raise ExperimentError("campaign needs at least one circuit")
        unknown = [s for s in self.stages if s not in STAGES]
        if unknown:
            raise ExperimentError(
                f"unknown campaign stage(s) {unknown}; known: {list(STAGES)}"
            )


@dataclass
class _Context:
    """Per-circuit lazy state shared between stages."""

    circuit: object
    config: CampaignConfig
    store: ArtifactStore
    jobs: int
    evaluator: object | None = None
    partition: object | None = None
    extra: dict = field(default_factory=dict)


def _quick(config: CampaignConfig, quick_value, full_value):
    return quick_value if config.quick else full_value


def _get_evaluator(ctx: _Context):
    """Evaluator with the separation matrix served through the cache."""
    if ctx.evaluator is None:
        from repro.library.default_lib import generic_technology
        from repro.partition.evaluator import PartitionEvaluator

        technology = generic_technology()
        separation, hit = cached_separation_matrix(
            ctx.store, ctx.circuit, technology.separation_cap
        )
        ctx.extra["separation_hit"] = hit
        ctx.evaluator = PartitionEvaluator(
            ctx.circuit, technology=technology, separation=separation
        )
    return ctx.evaluator


def _get_partition(ctx: _Context):
    if ctx.partition is None:
        from repro.optimize.start import chain_start_partition, estimate_module_count

        evaluator = _get_evaluator(ctx)
        ctx.partition = chain_start_partition(
            evaluator,
            estimate_module_count(evaluator),
            random.Random(ctx.config.seed),
        )
    return ctx.partition


# ------------------------------------------------------------------- stages
def _stage_separation(ctx: _Context) -> dict:
    from repro.library.default_lib import generic_technology

    cap = generic_technology().separation_cap
    matrix, hit = cached_separation_matrix(ctx.store, ctx.circuit, cap)
    return {"hit": hit, "meta": {"cap": cap, "gates": int(matrix.matrix.shape[0])}}


def _stage_stuck_at(ctx: _Context) -> dict:
    from repro.faultsim.patterns import random_patterns
    from repro.faultsim.stuck_at import enumerate_stuck_at_faults

    config = ctx.config
    faults = enumerate_stuck_at_faults(ctx.circuit)
    patterns = random_patterns(
        len(ctx.circuit.input_names),
        _quick(config, 64, 256),
        seed=config.seed,
    )
    matrix, hit = cached_detection_matrix(
        ctx.store, ctx.circuit, faults, patterns, jobs=ctx.jobs
    )
    coverage = float(matrix.any(axis=1).mean())
    return {
        "hit": hit,
        "meta": {
            "faults": len(faults),
            "patterns": int(patterns.shape[0]),
            "coverage": coverage,
        },
    }


def _stage_atpg(ctx: _Context) -> dict:
    from repro.faultsim.faults import sample_bridging_faults, sample_gate_oxide_shorts

    config = ctx.config
    partition = _get_partition(ctx)
    defects = sample_bridging_faults(
        ctx.circuit,
        _quick(config, 30, 120),
        seed=config.seed + 1,
        current_range_ua=(0.5, 8.0),
    ) + sample_gate_oxide_shorts(
        ctx.circuit,
        _quick(config, 15, 60),
        seed=config.seed + 2,
        current_range_ua=(0.5, 8.0),
    )
    # Always the defect-parallel mode: its per-defect RNG streams make
    # the test set (and therefore the cache key and manifest) invariant
    # to --jobs — a warm run hits regardless of the worker count used
    # to build the artifact.
    tests, hit = cached_iddq_test_set(
        ctx.store,
        ctx.circuit,
        partition,
        defects,
        seed=config.seed,
        random_vectors=_quick(config, 32, 128),
        restarts=_quick(config, 2, 4),
        flip_budget=_quick(config, 8, 24),
        defect_parallel=True,
        jobs=ctx.jobs,
    )
    return {
        "hit": hit,
        "meta": {
            "defects": len(defects),
            "vectors": tests.num_vectors,
            "coverage": tests.coverage,
            "defect_parallel": True,
        },
    }


def _stage_optimize(ctx: _Context) -> dict:
    from repro.config import EvolutionParams
    from repro.optimize.annealing import AnnealingParams

    config = ctx.config
    evaluator = _get_evaluator(ctx)
    evolution = EvolutionParams(
        generations=_quick(config, 6, 120),
        convergence_window=_quick(config, 4, 30),
    )
    annealing = (
        AnnealingParams(
            initial_temperature=5.0,
            cooling=0.7,
            steps_per_temperature=8,
            min_temperature=0.05,
        )
        if config.quick
        else AnnealingParams()
    )
    # A fixed two-seed population: the winner (and the cache key) must
    # not depend on --jobs, only on the campaign seed; workers merely
    # decide how the fixed seed list is scheduled.
    seeds = [config.seed, config.seed + 1]
    partition, meta, hit = cached_portfolio(
        ctx.store,
        evaluator,
        seeds,
        evolution_params=evolution,
        annealing_params=annealing,
        kl_passes=1,
        jobs=ctx.jobs,
    )
    return {"hit": hit, "meta": dict(meta, modules=partition.num_modules)}


_STAGE_RUNNERS = {
    "separation": _stage_separation,
    "stuck-at": _stage_stuck_at,
    "atpg": _stage_atpg,
    "optimize": _stage_optimize,
}


# ------------------------------------------------------------------ campaign
def run_campaign(config: CampaignConfig) -> dict:
    """Execute the campaign; returns the manifest dict."""
    from repro.netlist.benchmarks import load_iscas85

    store = ArtifactStore(config.cache_dir)
    jobs = resolve_jobs(config.jobs)
    entries: list[dict] = []
    started = time.perf_counter()
    for name in config.circuits:
        circuit = load_iscas85(name)
        ctx = _Context(circuit=circuit, config=config, store=store, jobs=jobs)
        for stage in config.stages:
            stage_started = time.perf_counter()
            outcome = _STAGE_RUNNERS[stage](ctx)
            entries.append(
                {
                    "circuit": name,
                    "stage": stage,
                    "hit": outcome["hit"],
                    "seconds": time.perf_counter() - stage_started,
                    "meta": outcome["meta"],
                }
            )
    hits = sum(1 for e in entries if e["hit"])
    return {
        "schema": MANIFEST_SCHEMA,
        "cache_dir": str(store.root),
        "jobs": jobs,
        "quick": config.quick,
        "seed": config.seed,
        "circuits": list(config.circuits),
        "stages": list(config.stages),
        "entries": entries,
        "totals": {
            "entries": len(entries),
            "hits": hits,
            "misses": len(entries) - hits,
            "seconds": time.perf_counter() - started,
            "store": {
                "hits": store.stats.hits,
                "misses": store.stats.misses,
                "puts": store.stats.puts,
            },
        },
    }


def save_manifest(manifest: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def render_manifest(manifest: dict) -> str:
    """Human-readable campaign summary table."""
    from repro.flow.report import format_table

    rows = [
        [
            entry["circuit"],
            entry["stage"],
            "hit" if entry["hit"] else "miss",
            f"{entry['seconds']:.2f}s",
        ]
        for entry in manifest["entries"]
    ]
    totals = manifest["totals"]
    table = format_table(["circuit", "stage", "cache", "time"], rows)
    return (
        f"{table}\n"
        f"{totals['hits']}/{totals['entries']} stages from cache, "
        f"{totals['seconds']:.2f}s total (jobs={manifest['jobs']}, "
        f"cache={manifest['cache_dir']})"
    )
