"""The campaign runner: experiments x circuits through cache + executor.

``python -m repro.experiments campaign`` drives the paper's pipeline
stages — separation matrix, stuck-at detection matrix, IDDQ ATPG,
partition optimisation — over a list of benchmark circuits, memoizing
every stage in the artifact store and sharding the parallelisable
stages across the process pool.  The run writes a JSON **manifest**
recording, per (circuit, stage): the artifact cache key, whether it was
served from cache, wall-clock seconds and stage-specific metadata —
the machine-readable receipt the benchmarks and CI assert against
(e.g. "a second run serves separation/detection/test-set artifacts from
the cache").

Failure model (DESIGN.md §10): each (circuit, stage) runs inside its
own try/except — one failure quarantines that entry (``"status":
"failed"`` with the error string in the manifest) while every other
entry, including downstream stages of other circuits, still runs.
With an output path configured, entries are journaled incrementally to
``<manifest>.partial.jsonl`` the moment each stage completes, so a
killed campaign leaves a durable record; ``resume=<manifest-or-journal>``
skips entries already recorded as succeeded (copied into the new
manifest with ``"resumed": true``) and re-executes only the rest —
restarted on the same cache directory, the campaign completes from
where it died with bit-identical artifacts.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.errors import ExperimentError
from repro.obs import live
from repro.runtime.artifacts import (
    cached_detection_matrix,
    cached_iddq_test_set,
    cached_portfolio,
    cached_separation_matrix,
)
from repro.runtime.executor import executor_stats_snapshot, resolve_jobs
from repro.runtime.faults import FaultPlan, InjectedKill
from repro.runtime.store import ArtifactStore

__all__ = [
    "CampaignConfig",
    "load_resume_entries",
    "render_manifest",
    "run_campaign",
    "save_manifest",
    "status_path",
    "STAGES",
]

#: Stage execution order — later stages reuse earlier artifacts (the
#: optimiser and ATPG stages consume the cached separation matrix).
STAGES: tuple[str, ...] = ("separation", "stuck-at", "atpg", "optimize")

#: Schema 2 adds per-entry "status" (ok | failed), optional "error" /
#: "resumed" fields and the failed/resumed totals.  Schema 3 adds the
#: optional per-entry "metrics" dict — the runtime counter deltas the
#: stage produced (cache hits by kind, executor retries/restarts,
#: summed worker task seconds), present only when metrics collection is
#: on (``--trace`` / ``REPRO_METRICS``); with telemetry off, a schema-3
#: manifest is field-for-field a schema-2 manifest.  Schema 4 adds the
#: always-present ``totals["executor"]`` recovery profile (retries,
#: timeouts, pool restarts, serial fallbacks, tasks recovered, stalls
#: accumulated across every executor the run built) — a count of
#: recovery *events*, deterministic under a deterministic fault plan,
#: unlike the timing-dependent per-entry metrics.
MANIFEST_SCHEMA = 4


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: circuits x stages, budgets, cache and pool knobs.

    ``out`` is the manifest path; setting it enables the incremental
    ``<out>.partial.jsonl`` journal and the atomic manifest write at
    the end.  ``resume`` names a previous manifest (or journal) whose
    succeeded entries are skipped.  ``trace`` names a Chrome
    trace-event output path; setting it turns on span tracing *and*
    metrics for the run (workers included — the executor forwards the
    flags with every task) and writes the merged, worker-attributed
    trace there at the end.  ``prom`` names a Prometheus textfile
    (node-exporter textfile collector format); setting it turns on
    metrics and rewrites the file after every stage and at the end.
    Telemetry never changes computed results: the manifest is identical
    modulo ``seconds`` and the per-entry ``metrics`` dicts.

    With ``out`` set the run also maintains ``<out>.status.json`` (the
    :class:`repro.obs.live.ProgressLedger` document — atomic-renamed
    after every stage, so it always parses) and, when the heartbeat
    channel is on without an explicit ``REPRO_HEARTBEAT_DIR``, pins the
    heartbeat run directory to ``<out>.hb`` so the run's worker files
    land next to its manifest.
    """

    circuits: tuple[str, ...] = ("c432", "c880")
    stages: tuple[str, ...] = STAGES
    jobs: int | None = None
    cache_dir: str | None = None
    seed: int = 1995
    quick: bool = True
    out: str | None = None
    resume: str | None = None
    trace: str | None = None
    prom: str | None = None

    def __post_init__(self) -> None:
        if not self.circuits:
            raise ExperimentError("campaign needs at least one circuit")
        unknown = [s for s in self.stages if s not in STAGES]
        if unknown:
            raise ExperimentError(
                f"unknown campaign stage(s) {unknown}; known: {list(STAGES)}"
            )


@dataclass
class _Context:
    """Per-circuit lazy state shared between stages."""

    circuit: object
    config: CampaignConfig
    store: ArtifactStore
    jobs: int
    evaluator: object | None = None
    partition: object | None = None
    extra: dict = field(default_factory=dict)


def _quick(config: CampaignConfig, quick_value, full_value):
    return quick_value if config.quick else full_value


def _get_evaluator(ctx: _Context):
    """Evaluator with the separation matrix served through the cache."""
    if ctx.evaluator is None:
        from repro.library.default_lib import generic_technology
        from repro.partition.evaluator import PartitionEvaluator

        technology = generic_technology()
        separation, hit = cached_separation_matrix(
            ctx.store, ctx.circuit, technology.separation_cap
        )
        ctx.extra["separation_hit"] = hit
        ctx.evaluator = PartitionEvaluator(
            ctx.circuit, technology=technology, separation=separation
        )
    return ctx.evaluator


def _get_partition(ctx: _Context):
    if ctx.partition is None:
        from repro.optimize.start import chain_start_partition, estimate_module_count

        evaluator = _get_evaluator(ctx)
        ctx.partition = chain_start_partition(
            evaluator,
            estimate_module_count(evaluator),
            random.Random(ctx.config.seed),
        )
    return ctx.partition


# ------------------------------------------------------------------- stages
def _stage_separation(ctx: _Context) -> dict:
    from repro.library.default_lib import generic_technology

    cap = generic_technology().separation_cap
    matrix, hit = cached_separation_matrix(ctx.store, ctx.circuit, cap)
    return {"hit": hit, "meta": {"cap": cap, "gates": int(matrix.matrix.shape[0])}}


def _stage_stuck_at(ctx: _Context) -> dict:
    from repro.faultsim.patterns import random_patterns
    from repro.faultsim.stuck_at import enumerate_stuck_at_faults

    config = ctx.config
    faults = enumerate_stuck_at_faults(ctx.circuit)
    patterns = random_patterns(
        len(ctx.circuit.input_names),
        _quick(config, 64, 256),
        seed=config.seed,
    )
    matrix, hit = cached_detection_matrix(
        ctx.store, ctx.circuit, faults, patterns, jobs=ctx.jobs
    )
    coverage = float(matrix.any(axis=1).mean())
    return {
        "hit": hit,
        "meta": {
            "faults": len(faults),
            "patterns": int(patterns.shape[0]),
            "coverage": coverage,
        },
    }


def _stage_atpg(ctx: _Context) -> dict:
    from repro.faultsim.faults import sample_bridging_faults, sample_gate_oxide_shorts

    config = ctx.config
    partition = _get_partition(ctx)
    defects = sample_bridging_faults(
        ctx.circuit,
        _quick(config, 30, 120),
        seed=config.seed + 1,
        current_range_ua=(0.5, 8.0),
    ) + sample_gate_oxide_shorts(
        ctx.circuit,
        _quick(config, 15, 60),
        seed=config.seed + 2,
        current_range_ua=(0.5, 8.0),
    )
    # Always the defect-parallel mode: its per-defect RNG streams make
    # the test set (and therefore the cache key and manifest) invariant
    # to --jobs — a warm run hits regardless of the worker count used
    # to build the artifact.
    tests, hit = cached_iddq_test_set(
        ctx.store,
        ctx.circuit,
        partition,
        defects,
        seed=config.seed,
        random_vectors=_quick(config, 32, 128),
        restarts=_quick(config, 2, 4),
        flip_budget=_quick(config, 8, 24),
        defect_parallel=True,
        jobs=ctx.jobs,
    )
    return {
        "hit": hit,
        "meta": {
            "defects": len(defects),
            "vectors": tests.num_vectors,
            "coverage": tests.coverage,
            "defect_parallel": True,
        },
    }


def _stage_optimize(ctx: _Context) -> dict:
    from repro.config import EvolutionParams
    from repro.optimize.annealing import AnnealingParams

    config = ctx.config
    evaluator = _get_evaluator(ctx)
    evolution = EvolutionParams(
        generations=_quick(config, 6, 120),
        convergence_window=_quick(config, 4, 30),
    )
    annealing = (
        AnnealingParams(
            initial_temperature=5.0,
            cooling=0.7,
            steps_per_temperature=8,
            min_temperature=0.05,
        )
        if config.quick
        else AnnealingParams()
    )
    # A fixed two-seed population: the winner (and the cache key) must
    # not depend on --jobs, only on the campaign seed; workers merely
    # decide how the fixed seed list is scheduled.
    seeds = [config.seed, config.seed + 1]
    partition, meta, hit = cached_portfolio(
        ctx.store,
        evaluator,
        seeds,
        evolution_params=evolution,
        annealing_params=annealing,
        kl_passes=1,
        jobs=ctx.jobs,
    )
    return {"hit": hit, "meta": dict(meta, modules=partition.num_modules)}


_STAGE_RUNNERS = {
    "separation": _stage_separation,
    "stuck-at": _stage_stuck_at,
    "atpg": _stage_atpg,
    "optimize": _stage_optimize,
}


# ----------------------------------------------------------- journal / resume
def journal_path(out: str | Path) -> Path:
    """The incremental journal companion of a manifest path."""
    return Path(f"{out}.partial.jsonl")


def status_path(out: str | Path) -> Path:
    """The live ``status.json`` companion of a manifest path."""
    return Path(f"{out}.status.json")


def _journal_append(path: Path | None, entry: dict) -> None:
    """Durably append one manifest entry; best-effort (a full or
    read-only disk must not kill the campaign that is producing the
    results the journal is meant to protect)."""
    if path is None:
        return
    try:
        with path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        obs.TRACER.instant(
            "campaign.journal_degraded",
            path=str(path),
            error=f"{type(exc).__name__}: {exc}",
        )
        warnings.warn(
            f"campaign journal append failed ({type(exc).__name__}: {exc}); "
            "continuing without checkpoint",
            RuntimeWarning,
            stacklevel=3,
        )


def load_resume_entries(path: str | Path) -> dict[tuple[str, str], dict]:
    """Succeeded entries of a previous run, keyed by (circuit, stage).

    Accepts a finished manifest (JSON dict with ``entries``) or the
    ``.partial.jsonl`` journal a killed run left behind (one entry per
    line; a torn final line — the kill arriving mid-append — is
    ignored).  Only entries with ``status == "ok"`` are resumable;
    failed ones re-execute.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ExperimentError(f"cannot read resume manifest {path}: {exc}") from exc
    entries: list[dict] = []
    if path.suffix == ".jsonl":
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail line from a mid-append kill
    else:
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"resume manifest {path} is not valid JSON: {exc}"
            ) from exc
        entries = list(manifest.get("entries", []))
    resumable: dict[tuple[str, str], dict] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        circuit, stage = entry.get("circuit"), entry.get("stage")
        # Schema-1 manifests predate "status"; their entries all succeeded.
        if circuit and stage and entry.get("status", "ok") == "ok":
            resumable[(circuit, stage)] = entry
    return resumable


# ------------------------------------------------------------------ campaign
def _run_stage(ctx: _Context, stage: str, key: str, plan: FaultPlan | None) -> dict:
    """One (circuit, stage) under the fault plan's stage site
    (``stage:<circuit>/<stage>:<kind>``).

    ``error`` models a stage bug (quarantined by the caller); ``kill``
    models the whole process dying — it raises :class:`InjectedKill`
    (a ``BaseException``) so the per-stage ``except Exception`` cannot
    absorb it and the run terminates mid-campaign, as a real SIGKILL
    would, leaving only the journal behind.
    """
    kind = plan.match("stage", key) if plan else None
    if kind == "kill":
        raise InjectedKill(f"injected campaign kill at stage {key}")
    if kind == "error":
        raise ExperimentError(f"injected stage fault at {key}")
    return _STAGE_RUNNERS[stage](ctx)


def run_campaign(config: CampaignConfig) -> dict:
    """Execute the campaign; returns the manifest dict.

    Each (circuit, stage) is quarantined: an exception marks that entry
    ``"status": "failed"`` (error string in the manifest) and the
    campaign moves on — downstream stages of the same circuit may fail
    in cascade, but other circuits are unaffected.  When ``config.out``
    is set, every entry is journaled to ``<out>.partial.jsonl`` the
    moment it completes and the manifest itself is written atomically
    at the end (journal removed after a fully successful save).
    """
    from repro.netlist.benchmarks import load_iscas85

    if config.trace:
        obs.enable(trace=True, metrics=True)
    if config.prom:
        obs.enable(metrics=True)
    store = ArtifactStore(config.cache_dir)
    jobs = resolve_jobs(config.jobs)
    plan = FaultPlan.from_env()
    if (
        config.out
        and live.resolve_heartbeat() > 0
        and not os.environ.get(live.HEARTBEAT_DIR_ENV, "").strip()
    ):
        # Pin the heartbeat run directory next to the manifest before
        # the first executor resolves (and exports) a tempdir default.
        os.environ[live.HEARTBEAT_DIR_ENV] = f"{config.out}.hb"
    executor_mark = executor_stats_snapshot()

    def executor_delta() -> dict:
        snapshot = executor_stats_snapshot()
        return {k: v - executor_mark[k] for k, v in snapshot.items()}

    ledger = (
        live.ProgressLedger(
            status_path(config.out),
            [(name, stage) for name in config.circuits
             for stage in config.stages],
            config.stages,
            manifest=config.out,
        )
        if config.out
        else None
    )
    resumed_entries = (
        load_resume_entries(config.resume) if config.resume else {}
    )
    journal = journal_path(config.out) if config.out else None
    if journal is not None:
        # Start a fresh journal: resume entries were loaded above, so a
        # leftover journal from the killed run (possibly the file named
        # by config.resume itself) is safe to truncate now.
        try:
            journal.unlink(missing_ok=True)
        except OSError:
            pass
    entries: list[dict] = []
    started = time.perf_counter()
    for name in config.circuits:
        circuit = None
        load_error: str | None = None
        if not all(
            (name, stage) in resumed_entries for stage in config.stages
        ):
            try:
                circuit = load_iscas85(name)
            except Exception as exc:
                load_error = f"{type(exc).__name__}: {exc}"
        ctx = _Context(circuit=circuit, config=config, store=store, jobs=jobs)
        for stage in config.stages:
            previous = resumed_entries.get((name, stage))
            if previous is not None:
                entry = dict(previous, resumed=True)
                entries.append(entry)
                _journal_append(journal, entry)
                if ledger is not None:
                    ledger.stage_finished(
                        name, stage, "resumed", entry.get("seconds", 0.0)
                    )
                continue
            if ledger is not None:
                ledger.stage_started(name, stage)
            stage_started = time.perf_counter()
            stage_mark = obs.METRICS.mark()
            with obs.TRACER.span(
                "campaign.stage", circuit=name, stage=stage
            ) as span:
                if load_error is not None:
                    outcome_error: str | None = (
                        f"circuit load failed: {load_error}"
                    )
                else:
                    try:
                        outcome = _run_stage(ctx, stage, f"{name}/{stage}", plan)
                        outcome_error = None
                    except Exception as exc:
                        outcome_error = f"{type(exc).__name__}: {exc}"
                span.set(status="failed" if outcome_error else "ok")
            if outcome_error is None:
                entry = {
                    "circuit": name,
                    "stage": stage,
                    "status": "ok",
                    "hit": outcome["hit"],
                    "seconds": time.perf_counter() - stage_started,
                    "meta": outcome["meta"],
                }
            else:
                entry = {
                    "circuit": name,
                    "stage": stage,
                    "status": "failed",
                    "hit": False,
                    "seconds": time.perf_counter() - stage_started,
                    "error": outcome_error,
                    "meta": {},
                }
                # The structured twin of the manifest's "failed" entry:
                # the quarantine decision lands in the event log with
                # the same attribution as the spans around it.
                obs.TRACER.instant(
                    "campaign.quarantine",
                    circuit=name,
                    stage=stage,
                    error=outcome_error,
                )
            if obs.METRICS.enabled:
                entry["metrics"] = obs.METRICS.delta_since(stage_mark)
            entries.append(entry)
            _journal_append(journal, entry)
            if ledger is not None:
                ledger.stage_finished(
                    name, stage, entry["status"], entry["seconds"],
                    executor=executor_delta(),
                )
            if config.prom:
                from repro.obs.sinks import export_prometheus

                export_prometheus(config.prom)
    executed_ok = [
        e for e in entries if e["status"] == "ok" and not e.get("resumed")
    ]
    hits = sum(1 for e in executed_ok if e["hit"])
    failed = sum(1 for e in entries if e["status"] == "failed")
    resumed = sum(1 for e in entries if e.get("resumed"))
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "cache_dir": str(store.root),
        "jobs": jobs,
        "quick": config.quick,
        "seed": config.seed,
        "circuits": list(config.circuits),
        "stages": list(config.stages),
        "entries": entries,
        "totals": {
            "entries": len(entries),
            # hits/misses count only stages executed this run — resumed
            # entries were not touched, failed ones built nothing.
            "hits": hits,
            "misses": len(executed_ok) - hits,
            "failed": failed,
            "resumed": resumed,
            "seconds": time.perf_counter() - started,
            "store": {
                "hits": store.stats.hits,
                "misses": store.stats.misses,
                "puts": store.stats.puts,
                "quarantined": store.stats.quarantined,
            },
            # The run's recovery profile (delta over every executor the
            # stages built): deterministic counts, unlike the per-entry
            # timing metrics.
            "executor": executor_delta(),
        },
    }
    if config.out:
        save_manifest(manifest, config.out)
        if journal is not None:
            journal.unlink(missing_ok=True)
    if ledger is not None:
        ledger.finalize(manifest["totals"])
    if config.trace:
        from repro.obs.sinks import export_chrome_trace

        export_chrome_trace(config.trace)
    if config.prom:
        from repro.obs.sinks import export_prometheus

        export_prometheus(config.prom)
    return manifest


def save_manifest(manifest: dict, path: str | Path) -> None:
    """Write the manifest atomically (temp + rename, like ``store.put``)
    so a kill mid-save can never leave a torn manifest that a later
    ``--resume`` would misread."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise


def render_manifest(manifest: dict) -> str:
    """Human-readable campaign summary table."""
    from repro.flow.report import format_table

    rows = []
    for entry in manifest["entries"]:
        if entry.get("status", "ok") == "failed":
            cache = "FAILED"
        elif entry.get("resumed"):
            cache = "resumed"
        else:
            cache = "hit" if entry["hit"] else "miss"
        rows.append(
            [entry["circuit"], entry["stage"], cache, f"{entry['seconds']:.2f}s"]
        )
    totals = manifest["totals"]
    table = format_table(["circuit", "stage", "cache", "time"], rows)
    extra = ""
    if totals.get("failed"):
        extra += f", {totals['failed']} failed"
    if totals.get("resumed"):
        extra += f", {totals['resumed']} resumed"
    return (
        f"{table}\n"
        f"{totals['hits']}/{totals['entries']} stages from cache{extra}, "
        f"{totals['seconds']:.2f}s total (jobs={manifest['jobs']}, "
        f"cache={manifest['cache_dir']})"
    )
