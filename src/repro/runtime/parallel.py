"""Domain drivers on top of the process-pool executor.

Three workloads are sharded here:

* :func:`sharded_detection_matrix` — the stuck-at detection matrix,
  split into contiguous fault shards.  Every fault's detection row is
  computed independently of its batch-mates (the batched engine pins
  each fault in its own bit column), so concatenating shard submatrices
  in fault order is **bit-identical** to the serial build — asserted by
  the runtime test suite and the benchmark.
* :func:`defect_parallel_targeted` — the targeted phase of IDDQ test
  generation with one independent, seeded ``random.Random`` stream per
  defect (stream id = ``f"{seed}:{defect_index}"``, so the walk for
  defect *d* is a pure function of ``(seed, d)`` and the engine —
  independent of worker scheduling and of *which other* defects are
  searched).  This trades the serial reference's single shared RNG walk
  for scalability; the mode is opt-in and its determinism and coverage
  are pinned by the equivalence suite.
* :func:`portfolio_runs` — multi-seed optimiser portfolios, one full
  portfolio run per seed; workers return compact summaries (assignment
  array + scalars) and the parent re-evaluates the winner, keeping the
  heavyweight result objects out of the result queue.

Worker state is shipped through the executor's ``state_factory`` as
``functools.partial`` over module-level builders — under fork it is
inherited copy-on-write (the parent pre-compiles the circuit so workers
start warm), under spawn it is pickled once per worker.

Because each shard/defect/seed task is a pure function of its inputs,
the executor's failure recovery (DESIGN.md §10) is free here: a crashed
or timed-out worker's tasks are simply re-dispatched and the gathered
result is bit-identical to the fault-free run — the fault-injection
suite pins this for every driver below.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Sequence

import numpy as np

from repro import obs
from repro.runtime.executor import Executor

__all__ = [
    "defect_parallel_targeted",
    "portfolio_runs",
    "sharded_detection_matrix",
]


# ------------------------------------------------------------------ stuck-at
def _stuck_state(circuit, faults, patterns, backend):
    from repro.faultsim.stuck_at import StuckAtSimulator

    return (StuckAtSimulator(circuit, backend), faults, patterns)


def _stuck_shard(state, task):
    sim, faults, patterns = state
    start, stop = task
    return start, sim.detection_matrix(faults[start:stop], patterns)


def sharded_detection_matrix(
    circuit,
    faults: Sequence,
    patterns: np.ndarray,
    jobs: int | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Stuck-at detection matrix sharded across workers by fault range.

    Bit-identical to ``StuckAtSimulator(circuit).detection_matrix(...)``
    at any worker count.  With ``jobs <= 1`` this *is* that call.
    ``backend`` is a registered simulation-backend *name* (names, not
    instances, cross the process boundary).

    Tasks are ``(start, stop)`` index ranges — the fault list rides in
    the worker state (inherited free under fork, pickled once per
    worker under spawn), keeping per-task payloads to a few bytes.
    """
    from repro.faultsim.stuck_at import StuckAtSimulator

    executor = Executor(jobs)
    if executor.serial or len(faults) <= 1:
        return StuckAtSimulator(circuit, backend).detection_matrix(faults, patterns)
    with obs.TRACER.span(
        "driver.detection_matrix",
        circuit=circuit.name,
        faults=len(faults),
        patterns=int(patterns.shape[0]),
        jobs=executor.jobs,
    ):
        # Warm shared compiled-graph caches before forking so every worker
        # inherits them instead of rebuilding (slot closures are cached on
        # the CompiledGraph instance itself).
        circuit.compiled.slot_closure()
        faults = list(faults)
        # ~4 shards per worker for load balance: fault cones vary in size.
        shard = max(1, -(-len(faults) // (executor.jobs * 4)))
        tasks = [
            (start, min(start + shard, len(faults)))
            for start in range(0, len(faults), shard)
        ]
        results = executor.map(
            _stuck_shard,
            tasks,
            state_factory=partial(_stuck_state, circuit, faults, patterns, backend),
        )
        out = np.zeros((len(faults), patterns.shape[0]), dtype=np.bool_)
        for start, submatrix in results:
            out[start : start + submatrix.shape[0]] = submatrix
        return out


# ---------------------------------------------------------------------- ATPG
def defect_stream_seed(seed: int, defect_index: int) -> str:
    """The per-defect RNG stream id (documented contract, DESIGN §9).

    ``random.Random`` seeds strings deterministically (version-2 string
    seeding is stable across platforms and Python releases), and the
    index is the defect's position in the *full* defect list, so the
    stream survives re-ordering of the undetected subset.
    """
    return f"{seed}:{defect_index}"


def _atpg_state(circuit, partition, library, technology, backend_name):
    from repro.faultsim.engine import CoverageEngine

    engine = CoverageEngine(circuit, library, technology, backend=backend_name)
    return (engine, partition)


def _atpg_search(state, task):
    from repro.faultsim.atpg import _search_activating_vector

    engine, partition = state
    index, defect, seed, num_inputs, restarts, flip_budget = task
    rng = random.Random(defect_stream_seed(seed, index))
    vector = _search_activating_vector(
        lambda ds, ps: engine.detection_matrix(partition, ds, ps),
        defect,
        rng,
        num_inputs,
        restarts,
        flip_budget,
    )
    return index, vector


def defect_parallel_targeted(
    circuit,
    partition,
    defects: Sequence,
    undetected: Sequence[int],
    seed: int,
    restarts: int,
    flip_budget: int,
    library=None,
    technology=None,
    backend_name: str | None = None,
    jobs: int | None = None,
) -> dict[int, np.ndarray]:
    """Activating vectors for every undetected defect, defect-parallel.

    Returns ``{defect index: vector}`` for the searches that succeeded,
    gathered in defect order.  Deterministic for a fixed ``seed``
    regardless of ``jobs``.
    """
    num_inputs = len(circuit.input_names)
    tasks = [
        (d, defects[d], seed, num_inputs, restarts, flip_budget)
        for d in undetected
    ]
    executor = Executor(jobs)
    with obs.TRACER.span(
        "driver.defect_targeted",
        circuit=circuit.name,
        defects=len(tasks),
        jobs=executor.jobs,
    ):
        if not executor.serial:
            circuit.compiled  # warm before fork
        results = executor.map(
            _atpg_search,
            tasks,
            state_factory=partial(
                _atpg_state, circuit, partition, library, technology, backend_name
            ),
        )
        return {index: vector for index, vector in results if vector is not None}


# ----------------------------------------------------------------- portfolio
def _portfolio_state(evaluator):
    return evaluator


def _portfolio_run(evaluator, task):
    from repro.errors import OptimizationError
    from repro.optimize.portfolio import portfolio_partition

    seed, evolution_params, annealing_params, kl_passes = task
    try:
        result = portfolio_partition(
            evaluator,
            evolution_params=evolution_params,
            annealing_params=annealing_params,
            seed=seed,
            kl_passes=kl_passes,
        )
    except OptimizationError as exc:
        # A seed whose every strategy came back infeasible must not
        # abort the whole fan-out — other seeds may still win.
        return {
            "seed": seed,
            "optimizer": "portfolio",
            "feasible": False,
            "cost": float("inf"),
            "violation": float("inf"),
            "evaluations": 0,
            "assignment": None,
            "error": str(exc),
        }
    assignment = result.best.partition.module_of_array()
    return {
        "seed": seed,
        "optimizer": result.optimizer,
        "feasible": result.feasible,
        "cost": result.best_cost,
        "violation": result.best.violation,
        "evaluations": result.evaluations,
        "assignment": assignment,
    }


def portfolio_runs(
    evaluator,
    seeds: Sequence[int],
    evolution_params=None,
    annealing_params=None,
    kl_passes: int = 2,
    jobs: int | None = None,
) -> list[dict]:
    """One full portfolio run per seed, fanned out across workers.

    Returns compact per-seed summaries in seed order (deterministic
    tie-breaks downstream).  A seed whose every strategy is infeasible
    yields a ``feasible=False`` summary (with the error message) rather
    than aborting the fan-out.
    """
    tasks = [
        (seed, evolution_params, annealing_params, kl_passes) for seed in seeds
    ]
    executor = Executor(jobs)
    with obs.TRACER.span(
        "driver.portfolio_runs", seeds=len(tasks), jobs=executor.jobs
    ):
        return executor.map(
            _portfolio_run, tasks, state_factory=partial(_portfolio_state, evaluator)
        )
