"""Deterministic fault injection for the runtime (DESIGN.md §10.5).

A :class:`FaultPlan` names exactly *where* the runtime must fail — a
task index in an :class:`~repro.runtime.executor.Executor` round, a
``circuit/stage`` cell of a campaign, a put ordinal of an
:class:`~repro.runtime.store.ArtifactStore` — and *how*: worker crash
(``os._exit``), task hang (sleep past the deadline), transient
exception, artifact corruption, or a campaign kill.  Injection is a
pure function of ``(site, index, attempt)``: no clocks, no RNG, no
shared state, so the same plan fires identically in every process it
reaches (the spec string crosses the worker boundary with each task).

Spec grammar (``;``-joined, env ``REPRO_FAULT_PLAN``)::

    <site>:<index>:<kind>[:<times>]

    task:3:crash        crash the worker running task 3 (first attempt)
    task:5:error:2      raise FaultInjectionError on task 5, attempts 0-1
    task:0:hang         sleep REPRO_FAULT_HANG_SECONDS before task 0
    stage:c432/atpg:error   fail that campaign stage (quarantined entry)
    stage:c432/atpg:kill    kill the campaign there (InjectedKill)
    put:1:corrupt       flip bytes of the artifact written by put #1

``times`` bounds how many attempts fire (default 1), which is what
makes recovery terminate: a crash with ``times=1`` succeeds on the
re-dispatched attempt.  Crash and hang only fire inside pool workers —
the in-process serial path is the bit-identity reference and must stay
alive; transient ``error`` faults fire on both paths so retry logic is
testable without a pool.

The harness exists for the test suite and CI smoke: every recovery
path (crash mid-shard, hang past deadline, transient error with retry,
corrupt artifact, campaign kill + resume) is driven through a plan and
asserted bit-identical to the fault-free run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import FaultInjectionError

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedKill",
    "corrupt_file",
    "inject_task_fault",
    "PLAN_ENV",
    "HANG_SECONDS_ENV",
]

#: Environment variable carrying the plan spec string.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable overriding the injected-hang sleep (seconds).
HANG_SECONDS_ENV = "REPRO_FAULT_HANG_SECONDS"

_DEFAULT_HANG_SECONDS = 30.0

#: Exit status of an injected worker crash (any non-zero code breaks
#: the pool; a recognizable one helps postmortems).
CRASH_EXIT_CODE = 87

#: Which kinds are meaningful at which site.
_SITE_KINDS = {
    "task": frozenset({"crash", "hang", "error"}),
    "stage": frozenset({"error", "kill"}),
    "put": frozenset({"corrupt"}),
}


class InjectedKill(BaseException):
    """An injected campaign kill, modelling SIGKILL for resume tests.

    Derives from ``BaseException`` so the campaign's per-stage
    quarantining ``except Exception`` cannot swallow it — the run dies
    with only the journal left behind, exactly like a real kill.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injection: fire ``kind`` at ``(site, index)`` for the first
    ``times`` attempts."""

    site: str
    index: str
    kind: str
    times: int = 1

    def render(self) -> str:
        base = f"{self.site}:{self.index}:{self.kind}"
        return base if self.times == 1 else f"{base}:{self.times}"


def _parse_one(part: str) -> FaultSpec:
    fields = part.split(":")
    if len(fields) not in (3, 4):
        raise FaultInjectionError(
            f"bad fault spec {part!r}: want site:index:kind[:times]"
        )
    site, index, kind = fields[0], fields[1], fields[2]
    if site not in _SITE_KINDS:
        raise FaultInjectionError(
            f"bad fault site {site!r} in {part!r}; known: {sorted(_SITE_KINDS)}"
        )
    if kind not in _SITE_KINDS[site]:
        raise FaultInjectionError(
            f"fault kind {kind!r} is not valid at site {site!r} "
            f"(valid: {sorted(_SITE_KINDS[site])})"
        )
    if not index:
        raise FaultInjectionError(f"bad fault spec {part!r}: empty index")
    times = 1
    if len(fields) == 4:
        try:
            times = int(fields[3])
        except ValueError as exc:
            raise FaultInjectionError(
                f"bad fault times {fields[3]!r} in {part!r}"
            ) from exc
        if times < 1:
            raise FaultInjectionError(f"fault times must be >= 1 in {part!r}")
    return FaultSpec(site=site, index=index, kind=kind, times=times)


_PARSE_CACHE: dict[str, "FaultPlan"] = {}


class FaultPlan:
    """A parsed, immutable set of :class:`FaultSpec` injections."""

    def __init__(self, faults: tuple[FaultSpec, ...] = ()):
        self.faults = tuple(faults)
        self.spec = ";".join(f.render() for f in self.faults)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string; parses are cached (workers re-parse the
        same spec once per unique string, not once per task)."""
        cached = _PARSE_CACHE.get(spec)
        if cached is not None:
            return cached
        faults = tuple(
            _parse_one(part.strip())
            for part in spec.split(";")
            if part.strip()
        )
        plan = cls(faults)
        _PARSE_CACHE[spec] = plan
        return plan

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan from ``REPRO_FAULT_PLAN``, or ``None`` if unset."""
        spec = os.environ.get(PLAN_ENV, "").strip()
        return cls.parse(spec) if spec else None

    def match(self, site: str, index, attempt: int = 0) -> str | None:
        """The fault kind to fire at ``(site, index, attempt)``, if any."""
        key = str(index)
        for fault in self.faults:
            if fault.site == site and fault.index == key and attempt < fault.times:
                return fault.kind
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec!r})"


def hang_seconds() -> float:
    """Injected-hang sleep: ``REPRO_FAULT_HANG_SECONDS`` or 30s."""
    env = os.environ.get(HANG_SECONDS_ENV, "").strip()
    return float(env) if env else _DEFAULT_HANG_SECONDS


def inject_task_fault(
    plan: FaultPlan, index: int, attempt: int, in_worker: bool
) -> None:
    """Fire the plan's fault for this task attempt, if any.

    Crash and hang fire only with ``in_worker=True`` — the serial path
    is the reference run and must neither die nor stall.  ``error``
    raises :class:`FaultInjectionError` on both paths (retryable).
    """
    kind = plan.match("task", index, attempt)
    if kind is None:
        return
    if kind == "crash" and in_worker:
        os._exit(CRASH_EXIT_CODE)
    elif kind == "hang" and in_worker:
        time.sleep(hang_seconds())
    elif kind == "error":
        raise FaultInjectionError(
            f"injected transient failure (task {index}, attempt {attempt})"
        )


def corrupt_file(path: Path | str) -> None:
    """Flip bytes at the head and middle of ``path`` (models a torn
    write that still exists on disk).  The head run clobbers the
    container magic so every reader fails to parse the file — a
    mid-file-only flip can land in a member the reader never checks."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        data = bytearray(b"\0")
    mid = len(data) // 2
    for i in list(range(min(16, len(data)))) + list(
        range(mid, min(mid + 16, len(data)))
    ):
        data[i] ^= 0xFF
    path.write_bytes(bytes(data))
