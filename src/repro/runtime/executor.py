"""The deterministic, fault-tolerant shard/submit/gather process pool.

One small abstraction carries every parallel workload in the tree:
sharded stuck-at detection-matrix builds, defect-parallel IDDQ ATPG and
multi-seed optimiser fan-outs all go through :meth:`Executor.map`.

Determinism rules (the contract every consumer is tested against):

1. **Pure tasks.**  ``fn(state, task)`` must be a deterministic function
   of the worker state (as built by ``state_factory``) and the task —
   no dependence on wall clock, worker identity or sibling tasks.
   Purity is also what makes recovery free: a re-dispatched task
   returns the same value, so failure handling cannot change results.
2. **Ordered gather.**  Results come back in *task order*, regardless
   of which worker finished first — and regardless of how many retry
   or recovery rounds it took to fill each slot — so any
   order-sensitive reduction (matrix concatenation, best-of tie-breaks)
   sees the serial order.
3. **Serial fallback is the reference.**  With ``jobs <= 1`` the exact
   same ``fn``/``state_factory`` run in-process; the parallel path must
   produce identical results at any failure point, which is what the
   equivalence and fault-injection suites pin.

Failure model (DESIGN.md §10):

* **Task exceptions** ship back as *values* carrying a pickle-safe
  ``(type, message, traceback)`` triple — a non-picklable exception
  cannot poison the result queue — and are retried up to
  ``task_retries`` times (default 0: a bug in ``fn`` surfaces once)
  with deterministic exponential backoff (``retry_backoff * 2^attempt``,
  no jitter).
* **Worker death** (``BrokenProcessPool``) keeps every completed
  result; only unfinished tasks are re-dispatched on a fresh pool.
  After :data:`MAX_POOL_RESTARTS` failed pools the survivors run on
  the in-process serial path.  Pool-level recovery does not consume
  per-task retry budget (the culprit is unknowable).
* **Hangs**: with ``task_timeout`` set, a task past its deadline raises
  :class:`~repro.errors.TaskTimeoutError` (or is re-dispatched while
  retry budget remains); the stalled pool is torn down and its worker
  processes terminated so a hung task cannot stall the gather forever.
* **Stalls** (DESIGN.md §12): before the hard deadline tears anything
  down, a *soft* threshold (``stall_after`` argument >
  ``REPRO_STALL_AFTER`` > half the hard deadline > off) grades the
  binary alive/killed signal: a task the gather has waited on past the
  threshold emits one ``executor.stall`` instant and bumps
  ``ExecutorStats.stalls``, enriched with the culprit worker's last
  heartbeat (pid, RSS high-water, open span stack) when the heartbeat
  channel is on.  Stall detection is pure observation — the wait
  continues unchanged toward the deadline or the result.

Live health (DESIGN.md §12): with ``REPRO_HEARTBEAT=<seconds>`` set,
every worker (and the serial path) runs a daemon thread appending
crash-safe JSONL records — current task, open spans, RSS, CPU — to
``hb-<pid>.jsonl`` under ``REPRO_HEARTBEAT_DIR`` (the parent creates
and exports a default so forked workers inherit it).  The channel is
write-only side traffic: results, ordering and bit-identity are
untouched, which the heartbeat determinism suite pins.
* **Pool-infrastructure failures** (a sandbox that forbids ``fork``,
  unpicklable ``fn``/state under spawn) degrade to the serial path with
  a warning — but only genuinely infrastructural errors take that exit:
  exceptions raised *inside* a task can never be mistaken for them,
  because the narrow catches sit where task exceptions cannot appear.

Worker count resolution: explicit argument > ``REPRO_JOBS`` environment
variable > serial (1); the value ``0`` means "all cores"
(``os.cpu_count()``).  ``task_timeout``/``task_retries``/``retry_backoff``
resolve the same way via ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``
/ ``REPRO_RETRY_BACKOFF``.  The pool start method is the platform
default (fork on Linux — worker state passed through the initializer is
then inherited without pickling).  Deterministic fault injection for
all of the above lives in :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from dataclasses import asdict, dataclass

from repro import obs
from repro.errors import TaskError, TaskTimeoutError
from repro.obs import live
from repro.runtime.faults import FaultPlan, inject_task_fault

__all__ = [
    "Executor",
    "ExecutorStats",
    "executor_stats_snapshot",
    "resolve_jobs",
    "resolve_task_retries",
    "resolve_task_timeout",
]

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variables supplying the default failure-handling knobs.
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Pool restarts per :meth:`Executor.map` before the survivors run
#: serially (bounds recovery under a persistently crashing pool).
MAX_POOL_RESTARTS = 2

T = TypeVar("T")
R = TypeVar("R")

#: Per-worker state, built once by the initializer.
_WORKER_STATE = None

#: True inside pool workers — gates crash/hang fault injection so the
#: in-process serial reference can never be killed or stalled.
_IN_WORKER = False

#: Sentinel for a result slot not yet filled.
_PENDING = object()


@dataclass
class ExecutorStats:
    """Public recovery bookkeeping, cumulative across :meth:`Executor.map`
    calls on one executor.

    Every count was previously computed and discarded inside the gather
    loop; surfacing it makes recovery behaviour assertable by tests and
    visible to operators.  The same counts are mirrored into the
    :data:`repro.obs.METRICS` registry (``executor.*``) when metrics are
    enabled — this dataclass is the always-on, executor-local view.

    Attributes:
        retries: task re-dispatches charged to the per-task retry budget
            (transient exceptions and timeouts with budget remaining).
        timeouts: tasks that ran past ``task_timeout`` (whether or not
            budget remained to retry them).
        pool_restarts: fresh pools built after a worker death or a
            deadline teardown.
        serial_fallbacks: times a ``map`` degraded to the in-process
            serial path (pool infrastructure failure or restart budget
            exhausted).
        tasks_recovered: completed-or-failed task slots stranded by a
            broken pool and re-dispatched on a later pool (no retry
            budget charged — the culprit is unknowable).
        stalls: tasks the gather waited on past the *soft* ``stall_after``
            threshold — the graded early-warning tier below ``timeouts``
            (a stalled task may still finish, time out, or both).
    """

    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    serial_fallbacks: int = 0
    tasks_recovered: int = 0
    stalls: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


#: Process-wide accumulation across every :class:`Executor` instance.
#: The campaign aggregates this into its manifest ``totals`` — the
#: stage drivers build executors internally, so without a global view
#: their recovery counts would be discarded with the executor objects.
_GLOBAL_STATS = ExecutorStats()


def executor_stats_snapshot() -> dict:
    """A copy of the process-wide cumulative :class:`ExecutorStats`
    counts (take one before and after a region and subtract to get the
    region's recovery profile)."""
    return _GLOBAL_STATS.as_dict()


class _TaskResult:
    """A successful task value plus its telemetry snapshot.

    Only built in workers when the parent asked for capture; the parent
    unwraps it during the gather, merges the snapshot under the task's
    stable site and hands callers the bare value — consumers of
    :meth:`Executor.map` never see the carrier.
    """

    __slots__ = ("value", "snapshot")

    def __init__(self, value, snapshot):
        self.value = value
        self.snapshot = snapshot


class _TaskError:
    """A task-raised exception, shipped back as a *value*.

    Wrapping keeps genuine task failures distinguishable from
    pool-infrastructure errors, and the payload is always picklable:
    the original exception rides along only if it survives a pickle
    round-trip, otherwise the ``(type name, message, traceback)``
    triple stands in — so a non-picklable exception degrades to a
    readable report instead of poisoning the result queue.
    """

    def __init__(self, exception: BaseException):
        self.type_name = type(exception).__name__
        self.message = str(exception)
        self.traceback = traceback.format_exc()
        try:
            pickle.loads(pickle.dumps(exception))
        except Exception:  # noqa: BLE001 - any pickling failure degrades
            self.exception = None
        else:
            self.exception = exception

    def reraise(self) -> None:
        if self.exception is not None:
            raise self.exception
        raise TaskError(
            f"task raised {self.type_name}: {self.message}\n"
            f"(original exception is not picklable; worker traceback follows)\n"
            f"{self.traceback}"
        )


class _PoolUnavailable(Exception):
    """Internal: the pool infrastructure (not any task) is unusable."""

    def __init__(self, cause: BaseException):
        super().__init__(str(cause))
        self.cause = cause


def _init_worker(state_factory) -> None:
    global _WORKER_STATE, _IN_WORKER
    _IN_WORKER = True
    _WORKER_STATE = state_factory() if state_factory is not None else None


def _invoke(fn, task, index, attempt, plan_spec, obs_spec):
    """Run one task in a worker; ``obs_spec`` is the parent's
    ``(trace, metrics)`` enablement, forwarded with the task so
    programmatic enabling reaches workers that did not inherit an
    environment flag.  On success the captured telemetry rides back
    with the value; a failed attempt's capture is discarded, keeping
    the merged telemetry a deterministic one-snapshot-per-task set.
    """
    token = obs.begin_task_capture(*obs_spec) if obs_spec else None
    live.note_task(index, attempt)
    started = time.perf_counter()
    try:
        with obs.TRACER.span(
            "executor.task", index=index, attempt=attempt, pid=os.getpid()
        ):
            if plan_spec:
                inject_task_fault(
                    FaultPlan.parse(plan_spec), index, attempt, _IN_WORKER
                )
            value = fn(_WORKER_STATE, task)
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        live.clear_task()
        if token is not None:
            obs.end_task_capture(token)
        return _TaskError(exc)
    live.clear_task()
    if token is None:
        return value
    obs.METRICS.inc("executor.task_seconds", time.perf_counter() - started)
    obs.METRICS.inc("executor.tasks")
    return _TaskResult(value, obs.end_task_capture(token))


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > 1 (serial).

    From either source, ``0`` means "all cores" (``os.cpu_count()``) so
    campaign scripts can say ``REPRO_JOBS=0`` portably; negative counts
    are rejected.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError as exc:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from exc
    if jobs is None:
        return 1
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def resolve_task_timeout(timeout: float | None = None) -> float | None:
    """Per-task deadline in seconds: argument > ``REPRO_TASK_TIMEOUT`` >
    ``None`` (no deadline)."""
    if timeout is None:
        env = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
        if env:
            try:
                timeout = float(env)
            except ValueError as exc:
                raise ValueError(
                    f"{TASK_TIMEOUT_ENV} must be a number, got {env!r}"
                ) from exc
    if timeout is not None and timeout <= 0:
        raise ValueError(f"task timeout must be > 0 seconds, got {timeout}")
    return timeout


def resolve_task_retries(retries: int | None = None) -> int:
    """Per-task retry budget: argument > ``REPRO_TASK_RETRIES`` > 0."""
    if retries is None:
        env = os.environ.get(TASK_RETRIES_ENV, "").strip()
        if env:
            try:
                retries = int(env)
            except ValueError as exc:
                raise ValueError(
                    f"{TASK_RETRIES_ENV} must be an integer, got {env!r}"
                ) from exc
    if retries is None:
        return 0
    if retries < 0:
        raise ValueError(f"task retries must be >= 0, got {retries}")
    return retries


def _resolve_retry_backoff(backoff: float | None = None) -> float:
    """Backoff base in seconds: argument > ``REPRO_RETRY_BACKOFF`` > 0."""
    if backoff is None:
        env = os.environ.get(RETRY_BACKOFF_ENV, "").strip()
        backoff = float(env) if env else 0.0
    if backoff < 0:
        raise ValueError(f"retry backoff must be >= 0, got {backoff}")
    return backoff


def _terminate_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Kill a stalled/broken pool's workers so a hung task cannot block
    interpreter exit (best-effort; touches executor internals)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass


class Executor:
    """Shard/submit/gather over a process pool (see module docstring)."""

    def __init__(
        self,
        jobs: int | None = None,
        *,
        task_timeout: float | None = None,
        task_retries: int | None = None,
        retry_backoff: float | None = None,
        stall_after: float | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.task_timeout = resolve_task_timeout(task_timeout)
        self.task_retries = resolve_task_retries(task_retries)
        self.retry_backoff = _resolve_retry_backoff(retry_backoff)
        self.stall_after = live.resolve_stall_after(stall_after, self.task_timeout)
        self.heartbeat = live.resolve_heartbeat()
        self.heartbeat_dir: str | None = None
        if self.heartbeat > 0:
            # Pin the run directory now and export it: forked/spawned
            # workers inherit the environment, so every hb-<pid>.jsonl
            # of this run lands in one place the stall detector (and
            # any external watcher) can read.
            directory = os.environ.get(live.HEARTBEAT_DIR_ENV, "").strip()
            if not directory:
                directory = tempfile.mkdtemp(prefix="repro-hb-")
                os.environ[live.HEARTBEAT_DIR_ENV] = directory
            self.heartbeat_dir = directory
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self.stats = ExecutorStats()

    @property
    def serial(self) -> bool:
        return self.jobs <= 1

    def map(
        self,
        fn: Callable[[object, T], R],
        tasks: Iterable[T],
        state_factory: Callable[[], object] | None = None,
    ) -> list[R]:
        """Run ``fn(state, task)`` for every task; results in task order.

        ``fn`` and ``state_factory`` must be module-level callables (or
        ``functools.partial`` of one) so they survive pickling; the
        state factory runs once per worker.  Serial mode builds the
        state once in-process and loops.  Failure semantics are the
        module-docstring contract: completed results survive worker
        death, task exceptions retry up to ``task_retries``, hangs past
        ``task_timeout`` raise :class:`~repro.errors.TaskTimeoutError`.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        results: list = [_PENDING] * len(tasks)
        with obs.TRACER.span(
            "executor.map", tasks=len(tasks), jobs=self.jobs
        ) as span:
            if self.serial or len(tasks) == 1:
                span.set(mode="serial")
                self._run_serial(
                    fn, tasks, state_factory, range(len(tasks)), results
                )
                return results
            try:
                pickle.dumps((fn, state_factory))
            except Exception as exc:  # noqa: BLE001 - anything unpicklable
                # fn/state can't cross the process boundary at all: nothing
                # was dispatched, so the serial run is the first execution.
                self._warn_fallback(exc)
                self._run_serial(
                    fn, tasks, state_factory, range(len(tasks)), results
                )
                return results
            return self._run_parallel(fn, tasks, state_factory, results)

    # ---------------------------------------------------------------- internal
    def _record(self, field: str, count: int = 1) -> None:
        """Bump one recovery counter in all three views at once: this
        executor's :class:`ExecutorStats`, the process-wide accumulator
        (what :func:`executor_stats_snapshot` reports) and the metrics
        registry (``executor.<field>``)."""
        setattr(self.stats, field, getattr(self.stats, field) + count)
        setattr(_GLOBAL_STATS, field, getattr(_GLOBAL_STATS, field) + count)
        obs.METRICS.inc(f"executor.{field}", count)

    def _warn_fallback(self, cause: BaseException) -> None:
        self._record("serial_fallbacks")
        obs.TRACER.instant(
            "executor.serial_fallback",
            cause=f"{type(cause).__name__}: {cause}",
        )
        warnings.warn(
            f"process pool unavailable ({type(cause).__name__}: {cause}); "
            "falling back to the serial executor",
            RuntimeWarning,
            stacklevel=3,
        )

    def _backoff(self, attempt: int) -> None:
        """Deterministic exponential backoff before a retry round."""
        delay = self.retry_backoff * (2 ** max(0, attempt - 1))
        if delay > 0:
            time.sleep(delay)

    def _run_serial(self, fn, tasks, state_factory, indices, results) -> None:
        """Run ``indices`` in order, in-process, filling ``results``.

        Applies the same transient-error retry budget as the parallel
        path (``error``-kind injected faults fire here too, so retry
        logic is testable without a pool); crash/hang injection never
        fires in-process.
        """
        state = state_factory() if state_factory is not None else None
        plan = self.fault_plan
        for i in indices:
            attempt = 0
            while True:
                live.note_task(i, attempt)
                try:
                    with obs.TRACER.span("executor.task", index=i,
                                         attempt=attempt):
                        if plan:
                            inject_task_fault(plan, i, attempt, in_worker=False)
                        results[i] = fn(state, tasks[i])
                    break
                except Exception:
                    if attempt >= self.task_retries:
                        live.clear_task()
                        raise
                    attempt += 1
                    self._record("retries")
                    obs.TRACER.instant("executor.retry", task=i, attempt=attempt)
                    self._backoff(attempt)
            live.clear_task()

    def _run_parallel(self, fn, tasks, state_factory, results) -> list:
        attempts = [0] * len(tasks)
        pending = list(range(len(tasks)))
        restarts = 0
        stranded: set[int] = set()
        while pending:
            try:
                (completed, failed, timed_out, unfinished, broken,
                 snapshots) = self._run_round(
                    fn, tasks, state_factory, pending, attempts
                )
            except _PoolUnavailable as infra:
                # Fork forbidden / unpicklable payload: nothing in this
                # round ran, completed earlier-round results are kept.
                self._warn_fallback(infra.cause)
                self._run_serial(fn, tasks, state_factory, pending, results)
                return results
            for i, value in completed.items():
                results[i] = value
                if i in stranded:
                    self._record("tasks_recovered")
            # Merge successful-attempt snapshots in task order: exactly
            # one per task ever merges, so the aggregated telemetry is
            # deterministic at any worker count or failure pattern.
            for i in sorted(snapshots):
                obs.merge_task_snapshot(snapshots[i], i)
            next_pending: list[int] = []
            retried = 0
            for i, error in failed.items():
                attempts[i] += 1
                if attempts[i] > self.task_retries:
                    error.reraise()
                self._record("retries")
                obs.TRACER.instant("executor.retry", task=i, attempt=attempts[i])
                retried = max(retried, attempts[i])
                next_pending.append(i)
            if timed_out is not None:
                attempts[timed_out] += 1
                self._record("timeouts")
                obs.TRACER.instant("executor.timeout", task=timed_out,
                                   attempt=attempts[timed_out])
                if attempts[timed_out] > self.task_retries:
                    raise TaskTimeoutError(
                        f"task {timed_out} exceeded the {self.task_timeout}s "
                        f"deadline on attempt {attempts[timed_out]}"
                    )
                self._record("retries")
                retried = max(retried, attempts[timed_out])
                next_pending.append(timed_out)
            for i in unfinished:
                # Advance the attempt (per-attempt fault injection must
                # see progress) but charge no retry budget: the worker
                # death that stranded these tasks names no culprit.
                attempts[i] += 1
                stranded.add(i)
                next_pending.append(i)
            if broken or timed_out is not None:
                restarts += 1
                if restarts > MAX_POOL_RESTARTS:
                    self._warn_fallback(
                        RuntimeError(
                            f"process pool failed {restarts} times; running "
                            f"{len(next_pending)} remaining task(s) serially"
                        )
                    )
                    self._run_serial(
                        fn, tasks, state_factory, sorted(next_pending), results
                    )
                    recovered = len(stranded.intersection(next_pending))
                    self._record("tasks_recovered", recovered)
                    return results
                self._record("pool_restarts")
                obs.TRACER.instant(
                    "executor.pool_restart",
                    round=restarts,
                    pending=len(next_pending),
                    broken=broken,
                )
            if retried:
                self._backoff(retried)
            pending = sorted(next_pending)
        return results

    def _await_result(self, future, index: int):
        """``future.result`` with the soft stall tier layered under the
        hard deadline.

        The wait is sliced so that crossing ``stall_after`` (measured
        from when the gather starts waiting on this future — the same
        clock the hard deadline uses) can emit one ``executor.stall``
        instant, then the wait resumes unchanged: same timeout
        semantics, same :class:`FuturesTimeout` at the deadline, same
        result otherwise.  With neither threshold set this is a plain
        blocking ``result()``.
        """
        stall_after = self.stall_after
        deadline = self.task_timeout
        if stall_after is None and deadline is None:
            return future.result()
        start = time.monotonic()
        stalled = stall_after is None  # nothing to fire when soft tier off
        while True:
            waited = time.monotonic() - start
            if deadline is not None and waited >= deadline:
                raise FuturesTimeout()
            slices = []
            if deadline is not None:
                slices.append(deadline - waited)
            if not stalled:
                slices.append(max(stall_after - waited, 0.0))
            try:
                return future.result(timeout=min(slices) if slices else None)
            except FuturesTimeout:
                if not stalled and time.monotonic() - start >= stall_after:
                    stalled = True
                    self._note_stall(index, time.monotonic() - start)
                # Loop re-checks the hard deadline; if only the soft
                # slice expired the wait simply continues.

    def _note_stall(self, index: int, waited: float) -> None:
        """Grade a long wait: bump ``stalls`` and emit one
        ``executor.stall`` instant, enriched with the culprit worker's
        freshest heartbeat (pid / RSS high-water / open spans) when the
        heartbeat channel is on.  Observation only — the caller's wait
        is not shortened, lengthened or resolved by this."""
        self._record("stalls")
        attrs: dict = {
            "task": index,
            "waited": round(waited, 3),
            "stall_after": self.stall_after,
        }
        if self.heartbeat_dir:
            beat = live.task_heartbeat(self.heartbeat_dir, index)
            if beat is not None:
                attrs["pid"] = beat.get("pid")
                attrs["rss_kb"] = beat.get("rss_kb")
                spans = beat.get("spans")
                if spans:
                    attrs["spans"] = ">".join(spans)
        obs.TRACER.instant("executor.stall", **attrs)

    def _run_round(self, fn, tasks, state_factory, indices, attempts):
        """One pool lifetime: submit ``indices``, gather what finishes.

        Returns ``(completed, failed, timed_out, unfinished, broken,
        snapshots)``: values by index, task-raised :class:`_TaskError`
        by index, the index of the first task past its deadline (or
        ``None``), the indices whose fate is unknown (worker died /
        round abandoned), whether the pool broke, and the telemetry
        snapshots of the completed tasks by index.  Raises
        :class:`_PoolUnavailable` only for errors no task can produce
        (fork failure, payload pickling) — a bug inside ``fn`` can
        never take that exit.
        """
        workers = min(self.jobs, len(indices))
        plan_spec = self.fault_plan.spec if self.fault_plan else ""
        obs_spec = obs.enabled_state() if any(obs.enabled_state()) else None
        completed: dict[int, object] = {}
        failed: dict[int, _TaskError] = {}
        snapshots: dict[int, dict | None] = {}
        unfinished: list[int] = []
        timed_out: int | None = None
        broken = False

        def harvest(i: int, value) -> None:
            if isinstance(value, _TaskError):
                failed[i] = value
                return
            if isinstance(value, _TaskResult):
                snapshots[i] = value.snapshot
                value = value.value
            completed[i] = value

        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(state_factory,),
            )
        except OSError as exc:
            raise _PoolUnavailable(exc) from exc
        try:
            try:
                futures = {
                    i: pool.submit(
                        _invoke, fn, tasks[i], i, attempts[i], plan_spec, obs_spec
                    )
                    for i in indices
                }
            except (OSError, RuntimeError) as exc:
                # Worker spawn failed (sandboxed fork) — no task ran.
                raise _PoolUnavailable(exc) from exc
            for i in indices:
                future = futures[i]
                if broken or timed_out is not None:
                    # Round already abandoned: harvest without waiting.
                    if future.done():
                        try:
                            value = future.result(timeout=0)
                        except Exception:  # noqa: BLE001 - infra error
                            unfinished.append(i)
                            continue
                        harvest(i, value)
                    else:
                        unfinished.append(i)
                    continue
                try:
                    value = self._await_result(future, i)
                except FuturesTimeout:
                    timed_out = i
                except BrokenProcessPool:
                    broken = True
                    unfinished.append(i)
                except (pickle.PicklingError, AttributeError, TypeError) as exc:
                    # Only submission/result *pickling* errors surface as
                    # future exceptions — fn's own exceptions come back
                    # as _TaskError values — so this cannot shadow a
                    # genuine task bug.
                    raise _PoolUnavailable(exc) from exc
                else:
                    harvest(i, value)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            if broken or timed_out is not None:
                _terminate_pool_processes(pool)
        return completed, failed, timed_out, unfinished, broken, snapshots
