"""The deterministic shard/submit/gather process-pool executor.

One small abstraction carries every parallel workload in the tree:
sharded stuck-at detection-matrix builds, defect-parallel IDDQ ATPG and
multi-seed optimiser fan-outs all go through :meth:`Executor.map`.

Determinism rules (the contract every consumer is tested against):

1. **Pure tasks.**  ``fn(state, task)`` must be a deterministic function
   of the worker state (as built by ``state_factory``) and the task —
   no dependence on wall clock, worker identity or sibling tasks.
2. **Ordered gather.**  Results come back in *task order*, regardless
   of which worker finished first, so any order-sensitive reduction
   (matrix concatenation, best-of tie-breaks) sees the serial order.
3. **Serial fallback is the reference.**  With ``jobs <= 1`` the exact
   same ``fn``/``state_factory`` run in-process; the parallel path must
   produce identical results, which is what the equivalence tests pin.

Worker count resolution: explicit argument > ``REPRO_JOBS`` environment
variable > serial (1).  The pool start method is the platform default
(fork on Linux — worker state passed through the initializer is then
inherited without pickling).  Infrastructure failures (a sandbox that
forbids ``fork``, unpicklable state under ``spawn``, a broken pool)
degrade to the serial path with a warning rather than failing the run.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["Executor", "resolve_jobs"]

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")

#: Per-worker state, built once by the initializer.
_WORKER_STATE = None


class _TaskError:
    """A task-raised exception, shipped back as a *value*.

    Wrapping keeps genuine task failures distinguishable from
    pool-infrastructure errors: only the latter may trigger the serial
    fallback — a bug inside ``fn`` must surface once, not re-run the
    whole task list and then surface anyway.
    """

    def __init__(self, exception: BaseException):
        self.exception = exception


class _TaskFailure(Exception):
    """Internal carrier lifting a :class:`_TaskError` past the
    infrastructure ``except`` clause in :meth:`Executor.map`."""

    def __init__(self, exception: BaseException):
        super().__init__(str(exception))
        self.exception = exception


def _init_worker(state_factory) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state_factory() if state_factory is not None else None


def _invoke(fn, task):
    try:
        return fn(_WORKER_STATE, task)
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        return _TaskError(exc)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_JOBS`` > 1 (serial)."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError as exc:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from exc
    if jobs is None:
        return 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


class Executor:
    """Shard/submit/gather over a process pool (see module docstring)."""

    def __init__(self, jobs: int | None = None):
        self.jobs = resolve_jobs(jobs)

    @property
    def serial(self) -> bool:
        return self.jobs <= 1

    def map(
        self,
        fn: Callable[[object, T], R],
        tasks: Iterable[T],
        state_factory: Callable[[], object] | None = None,
    ) -> list[R]:
        """Run ``fn(state, task)`` for every task; results in task order.

        ``fn`` and ``state_factory`` must be module-level callables (or
        ``functools.partial`` of one) so they survive pickling; the
        state factory runs once per worker.  Serial mode builds the
        state once in-process and loops.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.serial or len(tasks) == 1:
            return self._run_serial(fn, tasks, state_factory)
        try:
            return self._run_parallel(fn, tasks, state_factory)
        except _TaskFailure as failure:
            raise failure.exception from None
        except (BrokenProcessPool, pickle.PicklingError, AttributeError,
                OSError) as exc:
            # Only infrastructure failures reach here — a sandbox that
            # forbids fork, an unpicklable fn/state under spawn, a dead
            # pool.  Task-raised exceptions come back as _TaskError
            # values and re-raise above without a fallback rerun.
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "falling back to the serial executor",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._run_serial(fn, tasks, state_factory)

    # ---------------------------------------------------------------- internal
    @staticmethod
    def _run_serial(fn, tasks: Sequence, state_factory) -> list:
        state = state_factory() if state_factory is not None else None
        return [fn(state, task) for task in tasks]

    def _run_parallel(self, fn, tasks: Sequence, state_factory) -> list:
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(state_factory,),
        ) as pool:
            futures = [pool.submit(_invoke, fn, task) for task in tasks]
            results = [future.result() for future in futures]
        for result in results:
            if isinstance(result, _TaskError):
                raise _TaskFailure(result.exception)
        return results
