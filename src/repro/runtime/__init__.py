"""The parallel execution runtime (DESIGN.md §9).

Three pieces turn the per-stage kernels into a production pipeline:

* :mod:`~repro.runtime.fingerprint` + :mod:`~repro.runtime.store` — a
  content-addressed on-disk artifact cache.  Circuits, libraries and
  config dataclasses hash to stable digests; expensive artifacts
  (separation matrices, detection matrices, test sets, optimiser
  results) are memoized under ``REPRO_CACHE_DIR`` with exact-equality
  round-trips and schema-versioned keys.
* :mod:`~repro.runtime.executor` — a deterministic shard/submit/gather
  process pool (worker count via ``REPRO_JOBS``, serial in-process
  fallback) with ordered gather, so every parallel build is
  result-identical to its serial reference — including through worker
  crashes, hangs and transient task errors (per-task timeouts
  ``REPRO_TASK_TIMEOUT``, bounded retries ``REPRO_TASK_RETRIES``,
  partial-result recovery; DESIGN.md §10).
* :mod:`~repro.runtime.campaign` — the ``python -m repro.experiments
  campaign`` runner: stages x circuits through cache + pool, emitting a
  JSON manifest of artifacts, cache hits and timings, with per-stage
  failure quarantine, an incremental ``.partial.jsonl`` journal and
  ``--resume``.
* :mod:`~repro.runtime.faults` — the deterministic fault-injection
  harness (``REPRO_FAULT_PLAN``) that drives every recovery path above
  in tests and CI.

:mod:`~repro.runtime.parallel` holds the domain drivers (sharded
stuck-at detection, defect-parallel IDDQ ATPG, multi-seed portfolios)
and :mod:`~repro.runtime.artifacts` the typed cache recipes.
"""

from repro.runtime.executor import (
    Executor,
    resolve_jobs,
    resolve_task_retries,
    resolve_task_timeout,
)
from repro.runtime.faults import FaultPlan, InjectedKill
from repro.runtime.fingerprint import (
    combine,
    fingerprint_circuit,
    fingerprint_library,
    fingerprint_partition,
    fingerprint_technology,
    fingerprint_value,
)
from repro.runtime.store import Artifact, ArtifactStore, default_cache_dir

__all__ = [
    "Artifact",
    "ArtifactStore",
    "Executor",
    "FaultPlan",
    "InjectedKill",
    "combine",
    "default_cache_dir",
    "fingerprint_circuit",
    "fingerprint_library",
    "fingerprint_partition",
    "fingerprint_technology",
    "fingerprint_value",
    "resolve_jobs",
    "resolve_task_retries",
    "resolve_task_timeout",
]
