"""Stable content fingerprints for cacheable inputs.

The artifact store (:mod:`repro.runtime.store`) is content-addressed:
an artifact's key is a cryptographic hash of *everything its bytes
depend on* — the circuit structure, the electrical characterisation,
the algorithm parameters and a per-kind schema version.  Two runs that
hash the same inputs may share the artifact; any input change moves the
key and silently invalidates the old entry.

Fingerprints are computed from **values, not identities**:

* a :class:`~repro.netlist.circuit.Circuit` hashes its
  :class:`~repro.netlist.compiled.CompiledGraph` arrays (type codes and
  fanin CSR — the full structure, declaration order included) plus the
  node-name table and primary-output list.  Names matter because fault
  and defect descriptions reference nets by name.  The digest is cached
  on the circuit instance (circuits are immutable);
* libraries/technologies hash their dataclass field values
  (:class:`~repro.library.cell.CellSpec` fields in sorted cell order);
* config dataclasses, dicts, tuples and numpy arrays hash through a
  canonical recursive encoding (type-tagged, so ``1``, ``1.0`` and
  ``"1"`` never collide).

Floats are hashed via their shortest-repr encoding, which is exact
(``float(repr(x)) == x``), so a fingerprint is reproducible across
processes and platforms with IEEE-754 doubles.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.library.library import CellLibrary
from repro.library.technology import Technology
from repro.netlist.circuit import Circuit

__all__ = [
    "combine",
    "fingerprint_circuit",
    "fingerprint_library",
    "fingerprint_partition",
    "fingerprint_technology",
    "fingerprint_value",
]

#: Digest length in hex characters (blake2b-160: ample for a cache key,
#: short enough for readable file names).
_DIGEST_BYTES = 20


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=_DIGEST_BYTES)


def _feed(h, obj) -> None:
    """Feed ``obj`` into ``h`` through the canonical type-tagged encoding."""
    if obj is None:
        h.update(b"N")
    elif obj is True:
        h.update(b"T")
    elif obj is False:
        h.update(b"F")
    elif isinstance(obj, int):
        h.update(b"i" + str(obj).encode())
    elif isinstance(obj, float):
        # repr round-trips IEEE doubles exactly; hash the repr so equal
        # floats hash equal across processes.
        h.update(b"f" + repr(obj).encode())
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"s" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"b" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"a" + str(arr.dtype).encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, np.generic):
        _feed(h, obj.item())
    elif isinstance(obj, (list, tuple)):
        h.update(b"(" if isinstance(obj, tuple) else b"[")
        for item in obj:
            _feed(h, item)
        h.update(b")")
    elif isinstance(obj, (dict,)):
        h.update(b"{")
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
        h.update(b"}")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"<")
        for item in sorted(obj, key=repr):
            _feed(h, item)
        h.update(b">")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"D" + type(obj).__name__.encode())
        for field in dataclasses.fields(obj):
            _feed(h, field.name)
            _feed(h, getattr(obj, field.name))
    elif isinstance(obj, Circuit):
        h.update(b"C" + fingerprint_circuit(obj).encode())
    elif isinstance(obj, CellLibrary):
        h.update(b"L" + fingerprint_library(obj).encode())
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r}: add an explicit "
            "encoding rather than relying on repr()"
        )


def fingerprint_value(obj) -> str:
    """Canonical content digest of any supported value tree."""
    h = _hasher()
    _feed(h, obj)
    return h.hexdigest()


def combine(kind: str, version: int, *parts) -> str:
    """Cache key for one artifact: kind + schema version + input digests.

    ``parts`` may be fingerprint strings or raw values (hashed through
    :func:`fingerprint_value`).
    """
    h = _hasher()
    _feed(h, kind)
    _feed(h, version)
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


def fingerprint_circuit(circuit: Circuit) -> str:
    """Structural digest of a circuit, cached on the instance.

    Derived from the compiled graph: node-name table, primary outputs,
    per-node type codes and the fanin CSR (declaration order preserved
    — two circuits with the same gates but swapped fanin order compute
    different functions for non-commutative downstream consumers such
    as path extraction, so they hash differently).
    """
    cached = circuit.__dict__.get("_runtime_fingerprint")
    if cached is not None:
        return cached
    cg = circuit.compiled
    h = _hasher()
    _feed(h, "circuit")
    _feed(h, circuit.name)
    _feed(h, list(circuit.all_names))
    _feed(h, list(circuit.output_names))
    _feed(h, cg.type_code)
    _feed(h, cg.fanin_indptr)
    _feed(h, cg.fanin_indices)
    digest = h.hexdigest()
    circuit.__dict__["_runtime_fingerprint"] = digest
    return digest


def fingerprint_library(library: CellLibrary) -> str:
    """Digest of a cell library: name plus every cell's field values."""
    h = _hasher()
    _feed(h, "library")
    _feed(h, library.name)
    for cell in sorted(library, key=lambda c: c.name):
        _feed(h, cell)
    return h.hexdigest()


def fingerprint_technology(technology: Technology) -> str:
    """Digest of the technology constants (a frozen dataclass)."""
    return fingerprint_value(technology)


def fingerprint_partition(partition) -> str:
    """Digest of a partition: the dense gate -> module-id assignment.

    Module *ids* are included (not just the grouping): downstream
    artifacts key per-module data on the ids.
    """
    return fingerprint_value(partition.module_of_array())
