"""BIC sensor sizing (paper §3.1).

The virtual-rail perturbation of module ``Mi`` is approximated by
``Rs,i · îDD,max,i`` and limited to the technology's ``r``; since the
requirement is stringent, the paper simply fixes::

    Rs,i = r / îDD,max,i

The sensor area follows the model ``A_i = A0 + A1 / Rs,i`` — a constant
detection-circuitry term plus a sensing-element/bypass term that grows
as the switch resistance shrinks (a wider MOS switch is a bigger MOS
switch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConstraintError
from repro.library.technology import Technology

__all__ = ["BICSensor", "size_sensor", "size_sensors"]


@dataclass(frozen=True)
class BICSensor:
    """One sized sensor: everything downstream models need.

    Attributes:
        module_id: the module this sensor monitors.
        rs_ohm: bypass switch ON resistance.
        area: sensor area in technology units (``A0 + A1/Rs``).
        cs_ff: parasitic capacitance at the virtual rail (sum of the
            module cells' rail junction capacitances).
        tau_ns: sensing time constant ``τ = Rs · Cs``.
        max_current_ma: the ``îDD,max`` the sensor was sized for.
        rail_perturbation_v: resulting worst-case rail excursion
            (== the constraint limit unless Rs was clamped).
        rs_clamped: True when the manufacturability bounds overrode the
            constraint-derived resistance.
    """

    module_id: int
    rs_ohm: float
    area: float
    cs_ff: float
    tau_ns: float
    max_current_ma: float
    rail_perturbation_v: float
    rs_clamped: bool

    @property
    def meets_rail_limit(self) -> bool:
        return not self.rs_clamped or self.rail_perturbation_v <= 0.0


def size_sensor(
    technology: Technology,
    module_id: int,
    max_current_ma: float,
    rail_cap_ff: float,
) -> BICSensor:
    """Size the BIC sensor of one module.

    The unclamped design point is ``Rs = r / îDD,max``.  When that falls
    below ``min_rs_ohm`` the module draws too much transient current for
    any manufacturable switch — the sensor is clamped and flagged, and
    the partition constraint check treats the module as infeasible.
    Modules quiet enough to allow very large switches are clamped to
    ``max_rs_ohm`` (a bigger resistance would save no area: the ``A1/Rs``
    term is already negligible there).
    """
    if max_current_ma < 0:
        raise ConstraintError(f"negative module current {max_current_ma} mA")
    if max_current_ma == 0.0:
        rs = technology.max_rs_ohm
        clamped = False
    else:
        # r [V] / i [mA] = kOhm; convert to ohm.
        rs = technology.rail_limit_v / (max_current_ma * 1e-3)
        clamped = False
        if rs < technology.min_rs_ohm:
            rs = technology.min_rs_ohm
            clamped = True
        elif rs > technology.max_rs_ohm:
            rs = technology.max_rs_ohm
    area = technology.sensor_area_a0 + technology.sensor_area_a1 / rs
    cs_ff = max(rail_cap_ff, 0.0)
    tau_ns = rs * cs_ff * 1e-6  # ohm * fF = 1e-15 s = 1e-6 ns
    return BICSensor(
        module_id=module_id,
        rs_ohm=rs,
        area=area,
        cs_ff=cs_ff,
        tau_ns=tau_ns,
        max_current_ma=max_current_ma,
        rail_perturbation_v=rs * max_current_ma * 1e-3,
        rs_clamped=clamped,
    )


def size_sensors(
    technology: Technology,
    max_current_ma: np.ndarray,
    rail_cap_ff: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`size_sensor` over module-indexed arrays.

    Returns ``(rs_ohm, area, cs_ff, tau_ns, rs_clamped)``; every element
    matches the scalar sizing bit for bit (same IEEE operations).
    """
    current = np.asarray(max_current_ma, dtype=np.float64)
    if (current < 0).any():
        bad = float(current[current < 0][0])
        raise ConstraintError(f"negative module current {bad} mA")
    rs = np.full(current.shape, technology.max_rs_ohm)
    np.divide(
        technology.rail_limit_v, current * 1e-3, out=rs, where=current > 0.0
    )
    clamped = (current > 0.0) & (rs < technology.min_rs_ohm)
    rs = np.clip(rs, technology.min_rs_ohm, technology.max_rs_ohm)
    area = technology.sensor_area_a0 + technology.sensor_area_a1 / rs
    cs = np.maximum(np.asarray(rail_cap_ff, dtype=np.float64), 0.0)
    tau = rs * cs * 1e-6
    return rs, area, cs, tau, clamped
