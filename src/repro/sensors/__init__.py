"""Built-in current (BIC) sensor models (paper Fig. 1, §3).

* :mod:`~repro.sensors.bic` — sensor sizing: bypass-switch ON resistance
  from the virtual-rail constraint, the ``A0 + A1/Rs`` area model and the
  sensing time constant ``τ = Rs·Cs``;
* :mod:`~repro.sensors.degradation` — gate delay degradation ``δ(g,t)``
  caused by the shared virtual rail;
* :mod:`~repro.sensors.sensing` — behavioural test-mode model: iDD decay,
  threshold comparison, PASS/FAIL;
* :mod:`~repro.sensors.insertion` — netlist transform adding per-module
  sensors, virtual rails and the test monitor tree.
"""

from repro.sensors.bic import BICSensor, size_sensor
from repro.sensors.degradation import (
    DelayDegradationModel,
    FirstOrderDegradation,
    SecondOrderDegradation,
)
from repro.sensors.sensing import SenseOutcome, settle_time_ns, sense_module

__all__ = [
    "BICSensor",
    "size_sensor",
    "DelayDegradationModel",
    "FirstOrderDegradation",
    "SecondOrderDegradation",
    "SenseOutcome",
    "settle_time_ns",
    "sense_module",
]
