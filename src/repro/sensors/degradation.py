"""Gate delay degradation through the shared virtual rail (paper §3.2).

A gate discharging its load through the module's bypass switch sees an
extra series resistance; when ``n(t)`` gates switch simultaneously their
currents share the same switch, multiplying the excursion.  The paper
derives the degradation factor ``δ(g, t)`` from "a second order
electrical network model having as parameters Rs, Cs, Cg, Rg and n(t)"
— the exact closed form is lost to the OCR of the source text, so we
reconstruct it from the same network (DESIGN.md §6.4):

* first order, the discharge resistance grows from ``Rg`` to
  ``Rg + n(t)·Rs``, giving ``δ = n(t)·Rs / Rg``;
* second order, the virtual-rail capacitance ``Cs`` absorbs the first
  part of the transient and damps the excursion by
  ``1 / (1 + (Rs·Cs)/(Rg·Cg))``.

Both variants are provided; the ordering of partitions under either is
what the optimiser consumes, and the ablation bench compares them.
Degraded gate delays are then ``D_BIC(g,t) = D(g)·(1 + δ(g,t))``.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

__all__ = [
    "DelayDegradationModel",
    "FirstOrderDegradation",
    "SecondOrderDegradation",
]


class DelayDegradationModel(Protocol):
    """Computes ``δ`` for arrays of gates sharing one sensor.

    Args mirror the paper's parameter list: ``n`` simultaneously
    switching gates, bypass resistance ``rs_ohm``, rail capacitance
    ``cs_ff``, per-gate load ``cg_ff`` and discharge resistance
    ``rg_ohm``.
    """

    def delta(
        self,
        n: np.ndarray | float,
        rs_ohm: float,
        cs_ff: float,
        cg_ff: np.ndarray,
        rg_ohm: np.ndarray,
    ) -> np.ndarray: ...


class FirstOrderDegradation:
    """``δ = n · Rs / Rg`` — series-resistance-only model."""

    #: Pure elementwise numpy ops: safe to call with broadcast-shaped
    #: arguments (e.g. ``(C, 1)`` candidate params against ``(1, G)``
    #: gate vectors).  The batched gain kernel keys on this flag.
    broadcasts = True

    def delta(self, n, rs_ohm, cs_ff, cg_ff, rg_ohm):
        n = np.asarray(n, dtype=np.float64)
        return n * rs_ohm / np.asarray(rg_ohm, dtype=np.float64)


class SecondOrderDegradation:
    """Second-order model: series resistance damped by the rail capacitance.

    ``δ = (n · Rs / Rg) / (1 + (Rs·Cs) / (Rg·Cg))``

    Large modules have large ``Cs`` (every cell contributes junction
    capacitance to the rail), which softens the per-gate impact — the
    behaviour the paper's second-order network captures.
    """

    #: See :class:`FirstOrderDegradation.broadcasts`.
    broadcasts = True

    def delta(self, n, rs_ohm, cs_ff, cg_ff, rg_ohm):
        n = np.asarray(n, dtype=np.float64)
        cg = np.asarray(cg_ff, dtype=np.float64)
        rg = np.asarray(rg_ohm, dtype=np.float64)
        first_order = n * rs_ohm / rg
        damping = 1.0 + (rs_ohm * cs_ff) / (rg * cg)
        return first_order / damping
