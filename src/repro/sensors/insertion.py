"""Netlist transform: incorporate BIC sensors into the design.

The BIC sensor itself is an analog macro (sensing device + bypass MOS +
detection circuitry, paper Fig. 1); at the gate level its footprint is:

* every module's cells move onto a private *virtual ground rail* routed
  to the module's sensor (recorded as metadata — rails are supply nets,
  not signal nets);
* one global test-control input ``<prefix>_ctrl`` drives all bypass
  switches (C in Fig. 1);
* each sensor contributes one digital PASS/FAIL signal, modelled as a
  pseudo primary input ``<prefix>_fail_m<k>`` (its value comes from the
  analog domain, so logic synthesis must treat it as free);
* a balanced OR tree combines the per-module FAIL signals into one
  observable output ``<prefix>_fail`` — the paper's "test output" line,
  with the OR tree standing in for its routing/combining cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.netlist.bench import write_bench
from repro.netlist.builder import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.gate import GateType
from repro.partition.partition import Partition

__all__ = ["SensorInstance", "SensorizedDesign", "insert_sensors"]


@dataclass(frozen=True)
class SensorInstance:
    """Netlist-level footprint of one module's BIC sensor."""

    module_id: int
    control_net: str
    fail_net: str
    rail_net: str


@dataclass(frozen=True)
class SensorizedDesign:
    """A circuit with BIC sensors incorporated.

    Attributes:
        circuit: the extended netlist (original logic + monitor tree +
            sensor pseudo-inputs).
        base_circuit: the untouched original.
        partition: the module assignment the sensors follow.
        sensors: per-module sensor instances.
        rail_of_gate: gate name -> virtual rail net name.
        monitor_gates: names of the OR-tree gates added for the global
            FAIL output (their count is the digital monitor overhead).
        fail_output: name of the global FAIL primary output.
    """

    circuit: Circuit
    base_circuit: Circuit
    partition: Partition
    sensors: tuple[SensorInstance, ...]
    rail_of_gate: Mapping[str, str]
    monitor_gates: tuple[str, ...]
    fail_output: str

    @property
    def monitor_gate_count(self) -> int:
        return len(self.monitor_gates)

    def to_bench(self) -> str:
        """Extended ``.bench`` text with the module map in the header."""
        lines = [
            "IDDQ-testable design: BIC sensors incorporated",
            f"modules: {self.partition.num_modules}",
        ]
        for sensor in self.sensors:
            gates = sorted(
                self.base_circuit.gate_names[g]
                for g in self.partition.gates_of(sensor.module_id)
            )
            preview = ", ".join(gates[:12]) + (" ..." if len(gates) > 12 else "")
            lines.append(
                f"module {sensor.module_id}: rail={sensor.rail_net} "
                f"fail={sensor.fail_net} gates[{len(gates)}]: {preview}"
            )
        return write_bench(self.circuit, header="\n".join(lines))


def insert_sensors(
    circuit: Circuit, partition: Partition, prefix: str = "bic"
) -> SensorizedDesign:
    """Incorporate one BIC sensor per partition module into ``circuit``."""
    builder = CircuitBuilder(f"{circuit.name}_iddq")
    for gate in circuit:
        builder.add(gate)
    builder.outputs(circuit.output_names)

    control = f"{prefix}_ctrl"
    builder.input(control)

    sensors: list[SensorInstance] = []
    fail_nets: list[str] = []
    rail_of_gate: dict[str, str] = {}
    names = circuit.gate_names
    for module_id in sorted(partition.module_ids):
        fail_net = f"{prefix}_fail_m{module_id}"
        rail_net = f"{prefix}_vgnd_m{module_id}"
        builder.input(fail_net)
        fail_nets.append(fail_net)
        sensors.append(
            SensorInstance(
                module_id=module_id,
                control_net=control,
                fail_net=fail_net,
                rail_net=rail_net,
            )
        )
        for g in partition.gates_of(module_id):
            rail_of_gate[names[g]] = rail_net

    # Balanced OR tree over the per-module FAIL signals.  The control
    # input gates the tree so the FAIL output is quiet in normal mode.
    monitor_gates: list[str] = []
    level = fail_nets
    stage = 0
    while len(level) > 1:
        nxt: list[str] = []
        for i in range(0, len(level) - 1, 2):
            name = f"{prefix}_or_{stage}_{i // 2}"
            builder.gate(name, GateType.OR, [level[i], level[i + 1]])
            monitor_gates.append(name)
            nxt.append(name)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        stage += 1
    fail_output = f"{prefix}_fail"
    builder.gate(fail_output, GateType.AND, [level[0], control])
    monitor_gates.append(fail_output)
    builder.output(fail_output)

    return SensorizedDesign(
        circuit=builder.build(),
        base_circuit=circuit,
        partition=partition,
        sensors=tuple(sensors),
        rail_of_gate=rail_of_gate,
        monitor_gates=tuple(monitor_gates),
        fail_output=fail_output,
    )
