"""Behavioural test-mode model of the BIC sensor (paper Fig. 1, §3.4).

Test protocol per vector: apply the pattern with the bypass switch ON,
wait for the transient ``iDD`` to decay, switch the bypass OFF, let the
sensing device develop its voltage and compare against the threshold —
PASS if the sensed quiescent current is below ``IDDQ,th``, FAIL above.

The settle time the paper estimates "from SPICE level simulations as a
function of the BIC sensor time constant τ = Rs·Cs" is modelled in
closed form as exponential decay of the transient current from its peak
down to the technology's decay floor::

    Δ(τ) = τ · ln(î_peak / i_floor) + t_sense

which preserves the only property the cost function uses: monotone
growth with τ (and therefore with module size and switch resistance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.library.technology import Technology
from repro.sensors.bic import BICSensor

__all__ = ["SenseOutcome", "settle_time_ns", "settle_times_ns", "sense_module"]


@dataclass(frozen=True)
class SenseOutcome:
    """Result of sensing one module for one vector."""

    module_id: int
    measured_ua: float
    threshold_ua: float
    fails: bool

    @property
    def passes(self) -> bool:
        return not self.fails


def settle_time_ns(sensor: BICSensor, technology: Technology) -> float:
    """``Δ(τ)``: transient decay plus sense-amplifier decision time (ns)."""
    peak_ua = max(sensor.max_current_ma * 1e3, technology.decay_floor_ua)
    decay = sensor.tau_ns * math.log(peak_ua / technology.decay_floor_ua)
    return decay + technology.sense_time_ns


def settle_times_ns(
    max_current_ma: np.ndarray, tau_ns: np.ndarray, technology: Technology
) -> np.ndarray:
    """Vectorised :func:`settle_time_ns` over module-indexed arrays."""
    peak_ua = np.maximum(
        np.asarray(max_current_ma, dtype=np.float64) * 1e3,
        technology.decay_floor_ua,
    )
    decay = np.asarray(tau_ns, dtype=np.float64) * np.log(
        peak_ua / technology.decay_floor_ua
    )
    return decay + technology.sense_time_ns


def sense_module(
    sensor: BICSensor,
    quiescent_current_ua: float,
    technology: Technology,
) -> SenseOutcome:
    """Compare a module's measured quiescent current to the threshold.

    The detection circuitry produces FAIL when the sensed IDDQ is at or
    above ``IDDQ,th`` (the paper's "below/above a given threshold value").
    """
    if quiescent_current_ua < 0:
        raise ValueError(f"negative quiescent current {quiescent_current_ua} uA")
    return SenseOutcome(
        module_id=sensor.module_id,
        measured_ua=quiescent_current_ua,
        threshold_ua=technology.iddq_threshold_ua,
        fails=quiescent_current_ua >= technology.iddq_threshold_ua,
    )
